#include "table/group_by.h"

#include <algorithm>
#include <cassert>

namespace eep::table {

Result<GroupKeyCodec> GroupKeyCodec::Create(
    const Schema& schema, const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("GroupKeyCodec needs >= 1 column");
  }
  GroupKeyCodec codec;
  codec.columns_ = columns;
  uint64_t domain = 1;
  for (const auto& name : columns) {
    EEP_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
    const Field& field = schema.field(idx);
    if (field.type != DataType::kCategory) {
      return Status::InvalidArgument("group column '" + name +
                                     "' is not categorical");
    }
    const auto radix = static_cast<uint32_t>(field.dictionary->size());
    if (radix == 0) {
      return Status::InvalidArgument("group column '" + name +
                                     "' has empty dictionary");
    }
    if (domain > UINT64_MAX / radix) {
      return Status::OutOfRange("group domain overflows uint64");
    }
    domain *= radix;
    codec.column_indices_.push_back(idx);
    codec.radices_.push_back(radix);
  }
  return codec;
}

uint64_t GroupKeyCodec::DomainSize() const {
  uint64_t domain = 1;
  for (uint32_t r : radices_) domain *= r;
  return domain;
}

uint64_t GroupKeyCodec::Pack(const std::vector<uint32_t>& codes) const {
  assert(codes.size() == radices_.size());
  uint64_t key = 0;
  for (size_t i = 0; i < codes.size(); ++i) {
    assert(codes[i] < radices_[i]);
    key = key * radices_[i] + codes[i];
  }
  return key;
}

std::vector<uint32_t> GroupKeyCodec::Unpack(uint64_t key) const {
  std::vector<uint32_t> codes(radices_.size());
  for (size_t i = radices_.size(); i-- > 0;) {
    codes[i] = static_cast<uint32_t>(key % radices_[i]);
    key /= radices_[i];
  }
  return codes;
}

Result<std::string> GroupKeyCodec::Describe(const Schema& schema,
                                            uint64_t key) const {
  if (key >= DomainSize()) return Status::OutOfRange("key outside domain");
  const auto codes = Unpack(key);
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ",";
    const Field& field = schema.field(column_indices_[i]);
    EEP_ASSIGN_OR_RETURN(std::string value,
                         field.dictionary->ValueOf(codes[i]));
    out += columns_[i] + "=" + value;
  }
  return out;
}

int64_t GroupedCell::MaxEstabContribution() const {
  int64_t best = 0;
  for (const auto& c : contributions) best = std::max(best, c.count);
  return best;
}

const GroupedCell* GroupedCounts::Find(uint64_t key) const {
  auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const GroupedCell& cell, uint64_t k) { return cell.key < k; });
  if (it == cells.end() || it->key != key) return nullptr;
  return &*it;
}

Result<GroupedCounts> GroupCountByEstablishment(
    const Table& table, const std::vector<std::string>& group_columns,
    const std::string& estab_id_column) {
  EEP_ASSIGN_OR_RETURN(GroupKeyCodec codec,
                       GroupKeyCodec::Create(table.schema(), group_columns));
  EEP_ASSIGN_OR_RETURN(const Column* estab_col,
                       table.ColumnByName(estab_id_column));
  EEP_ASSIGN_OR_RETURN(const std::vector<int64_t>* estab_ids,
                       estab_col->AsInt64());

  // Gather raw code views once; the row loop then touches plain vectors.
  std::vector<const std::vector<uint32_t>*> code_views;
  code_views.reserve(codec.column_indices().size());
  for (size_t idx : codec.column_indices()) {
    code_views.push_back(&table.column(idx).codes());
  }

  // Pass 1: count per (cell, establishment).
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, int64_t>& p) const {
      // Mix the two halves; both are well-distributed already.
      return std::hash<uint64_t>()(p.first * 0x9E3779B97F4A7C15ULL ^
                                   static_cast<uint64_t>(p.second));
    }
  };
  std::unordered_map<std::pair<uint64_t, int64_t>, int64_t, PairHash>
      pair_counts;
  pair_counts.reserve(table.num_rows());

  std::vector<uint32_t> codes(code_views.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < code_views.size(); ++c) {
      codes[c] = (*code_views[c])[row];
    }
    const uint64_t key = codec.Pack(codes);
    ++pair_counts[{key, (*estab_ids)[row]}];
  }

  // Pass 2: fold into per-cell structures.
  std::unordered_map<uint64_t, GroupedCell> cells;
  for (const auto& [pair, count] : pair_counts) {
    GroupedCell& cell = cells[pair.first];
    cell.key = pair.first;
    cell.count += count;
    cell.contributions.push_back({pair.second, count});
  }

  GroupedCounts result{std::move(codec), {}};
  result.cells.reserve(cells.size());
  for (auto& [key, cell] : cells) {
    std::sort(cell.contributions.begin(), cell.contributions.end(),
              [](const EstabContribution& a, const EstabContribution& b) {
                return a.estab_id < b.estab_id;
              });
    result.cells.push_back(std::move(cell));
  }
  std::sort(result.cells.begin(), result.cells.end(),
            [](const GroupedCell& a, const GroupedCell& b) {
              return a.key < b.key;
            });
  return result;
}

Result<std::unordered_map<uint64_t, int64_t>> GroupCount(
    const Table& table, const GroupKeyCodec& codec) {
  std::vector<const std::vector<uint32_t>*> code_views;
  for (size_t idx : codec.column_indices()) {
    if (idx >= table.num_columns()) {
      return Status::OutOfRange("codec column index outside table");
    }
    code_views.push_back(&table.column(idx).codes());
  }
  std::unordered_map<uint64_t, int64_t> counts;
  std::vector<uint32_t> codes(code_views.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < code_views.size(); ++c) {
      codes[c] = (*code_views[c])[row];
    }
    ++counts[codec.Pack(codes)];
  }
  return counts;
}

}  // namespace eep::table
