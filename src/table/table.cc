#include "table/table.h"

#include <unordered_map>

namespace eep::table {

Result<Table> Table::Create(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("column length mismatch at " +
                                     schema.field(i).name);
    }
    if (columns[i].type() != schema.field(i).type) {
      return Status::InvalidArgument("column type mismatch at " +
                                     schema.field(i).name);
    }
    if (schema.field(i).type == DataType::kCategory) {
      // Validate codes against the dictionary so later hot loops can skip
      // bounds checks.
      const auto& dict = *schema.field(i).dictionary;
      for (uint32_t code : columns[i].codes()) {
        if (code >= dict.size()) {
          return Status::OutOfRange("category code out of range in column " +
                                    schema.field(i).name);
        }
      }
    }
  }
  return Table(std::move(schema), std::move(columns), rows);
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  EEP_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  return &columns_[idx];
}

Result<Table> Table::Filter(const std::vector<bool>& mask) const {
  if (mask.size() != num_rows_) {
    return Status::InvalidArgument("filter mask length mismatch");
  }
  std::vector<Column> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.FilterCopy(mask));
  return Table::Create(schema_, std::move(out));
}

Result<Table> Table::Select(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<Column> cols;
  for (const auto& name : names) {
    EEP_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
    fields.push_back(schema_.field(idx));
    cols.push_back(columns_[idx]);
  }
  EEP_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(fields)));
  return Table::Create(std::move(schema), std::move(cols));
}

Result<Table> Table::HashJoin(const Table& left, const std::string& left_key,
                              const Table& right,
                              const std::string& right_key) {
  EEP_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));
  EEP_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));
  EEP_ASSIGN_OR_RETURN(const std::vector<int64_t>* lvals, lkey->AsInt64());
  EEP_ASSIGN_OR_RETURN(const std::vector<int64_t>* rvals, rkey->AsInt64());

  std::unordered_map<int64_t, uint32_t> right_index;
  right_index.reserve(rvals->size());
  for (uint32_t i = 0; i < rvals->size(); ++i) {
    auto [it, inserted] = right_index.emplace((*rvals)[i], i);
    if (!inserted) {
      return Status::InvalidArgument("HashJoin: duplicate right key " +
                                     std::to_string((*rvals)[i]));
    }
  }

  // Probe: record, for each matching left row, the right row to gather.
  std::vector<bool> left_mask(left.num_rows(), false);
  std::vector<uint32_t> right_gather;
  right_gather.reserve(left.num_rows());
  for (size_t i = 0; i < lvals->size(); ++i) {
    auto it = right_index.find((*lvals)[i]);
    if (it == right_index.end()) continue;
    left_mask[i] = true;
    right_gather.push_back(it->second);
  }

  std::vector<Field> fields;
  std::vector<Column> cols;
  for (size_t i = 0; i < left.num_columns(); ++i) {
    fields.push_back(left.schema().field(i));
    cols.push_back(left.column(i).FilterCopy(left_mask));
  }
  EEP_ASSIGN_OR_RETURN(size_t rkey_idx, right.schema().IndexOf(right_key));
  for (size_t i = 0; i < right.num_columns(); ++i) {
    if (i == rkey_idx) continue;
    if (left.schema().Contains(right.schema().field(i).name)) {
      return Status::InvalidArgument("HashJoin: duplicate output column " +
                                     right.schema().field(i).name);
    }
    fields.push_back(right.schema().field(i));
    cols.push_back(right.column(i).TakeCopy(right_gather));
  }
  EEP_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(fields)));
  return Table::Create(std::move(schema), std::move(cols));
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    switch (schema_.field(i).type) {
      case DataType::kInt64:
        slots_.emplace_back(DataType::kInt64, int64_cols_.size());
        int64_cols_.emplace_back();
        break;
      case DataType::kDouble:
        slots_.emplace_back(DataType::kDouble, double_cols_.size());
        double_cols_.emplace_back();
        break;
      case DataType::kString:
        slots_.emplace_back(DataType::kString, string_cols_.size());
        string_cols_.emplace_back();
        break;
      case DataType::kCategory:
        slots_.emplace_back(DataType::kCategory, code_cols_.size());
        code_cols_.emplace_back();
        break;
    }
  }
}

Status TableBuilder::AppendRow(const std::vector<int64_t>& int64s,
                               const std::vector<double>& doubles,
                               const std::vector<std::string>& strings,
                               const std::vector<uint32_t>& codes) {
  if (int64s.size() != int64_cols_.size() ||
      doubles.size() != double_cols_.size() ||
      strings.size() != string_cols_.size() ||
      codes.size() != code_cols_.size()) {
    return Status::InvalidArgument("AppendRow arity mismatch");
  }
  for (size_t i = 0; i < int64s.size(); ++i) int64_cols_[i].push_back(int64s[i]);
  for (size_t i = 0; i < doubles.size(); ++i) {
    double_cols_[i].push_back(doubles[i]);
  }
  for (size_t i = 0; i < strings.size(); ++i) {
    string_cols_[i].push_back(strings[i]);
  }
  for (size_t i = 0; i < codes.size(); ++i) code_cols_[i].push_back(codes[i]);
  ++num_rows_;
  return Status::OK();
}

Result<Table> TableBuilder::Finish() {
  std::vector<Column> cols;
  cols.reserve(schema_.num_fields());
  for (const auto& [type, slot] : slots_) {
    switch (type) {
      case DataType::kInt64:
        cols.push_back(Column::OfInt64(std::move(int64_cols_[slot])));
        break;
      case DataType::kDouble:
        cols.push_back(Column::OfDouble(std::move(double_cols_[slot])));
        break;
      case DataType::kString:
        cols.push_back(Column::OfString(std::move(string_cols_[slot])));
        break;
      case DataType::kCategory:
        cols.push_back(Column::OfCategory(std::move(code_cols_[slot])));
        break;
    }
  }
  num_rows_ = 0;
  return Table::Create(schema_, std::move(cols));
}

}  // namespace eep::table
