#include "table/schema.h"

namespace eep::table {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kCategory: return "category";
  }
  return "unknown";
}

Dictionary::Dictionary(std::vector<std::string> values)
    : values_(std::move(values)) {
  index_.reserve(values_.size());
  for (uint32_t i = 0; i < values_.size(); ++i) index_[values_[i]] = i;
}

Result<std::shared_ptr<const Dictionary>> Dictionary::Create(
    std::vector<std::string> values) {
  auto dict = std::shared_ptr<const Dictionary>(
      new Dictionary(std::move(values)));
  if (dict->index_.size() != dict->values_.size()) {
    return Status::InvalidArgument("Dictionary has duplicate values");
  }
  return dict;
}

Result<uint32_t> Dictionary::CodeOf(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("dictionary value not found: " + value);
  }
  return it->second;
}

Result<std::string> Dictionary::ValueOf(uint32_t code) const {
  if (code >= values_.size()) {
    return Status::OutOfRange("dictionary code out of range");
  }
  return values_[code];
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  index_.reserve(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) index_[fields_[i].name] = i;
}

Result<Schema> Schema::Create(std::vector<Field> fields) {
  for (const auto& f : fields) {
    if (f.type == DataType::kCategory && f.dictionary == nullptr) {
      return Status::InvalidArgument("category field '" + f.name +
                                     "' lacks a dictionary");
    }
    if (f.name.empty()) {
      return Status::InvalidArgument("field with empty name");
    }
  }
  Schema schema(std::move(fields));
  if (schema.index_.size() != schema.fields_.size()) {
    return Status::InvalidArgument("schema has duplicate field names");
  }
  return schema;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no field named " + name);
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

Schema Schema::WithPrefix(const std::string& prefix) const {
  std::vector<Field> renamed = fields_;
  for (auto& f : renamed) f.name = prefix + f.name;
  return Schema(std::move(renamed));
}

}  // namespace eep::table
