// Data-cube roll-ups over grouped counts: derive the grouping of a coarser
// column subset from an already-computed finer grouping, without touching
// the base table again.
//
// A grouped count is a pure function of the (key, estab) multiset with
// integer weights, so re-aggregating the finer grouping's items under the
// projected coarse key yields EXACTLY the result a direct group-by on the
// coarse columns would produce — bit-identical cells, counts and
// contribution lists, for every thread count (see the determinism contract
// in partitioned_group_by.h and docs/ARCHITECTURE.md). This is what lets a
// workload of marginals share one full-table scan: compute the finest
// common cross-classification once, then roll every coarser marginal up
// from it (lodes/workload.h) or serve it from a cache (group_by_cache.h).
#ifndef EEP_TABLE_ROLLUP_H_
#define EEP_TABLE_ROLLUP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/group_by.h"

namespace eep::table {

/// \brief Arithmetic projection from a finer packed key domain onto a
/// coarser one: keeps the digits of the coarse codec's columns (in the
/// coarse codec's order, which may permute the base order) and sums out the
/// rest. Built once per roll-up; Project is a handful of multiply-divides
/// per key.
class KeyProjection {
 public:
  /// Requires every coarse column to appear in the base codec with the same
  /// radix (same dictionary); column order may differ.
  static Result<KeyProjection> Create(const GroupKeyCodec& base,
                                      const GroupKeyCodec& coarse);

  /// Projects one base key onto the coarse domain.
  uint64_t Project(uint64_t base_key) const {
    uint64_t key = 0;
    for (const Digit& d : digits_) {
      key += ((base_key / d.div) % d.radix) * d.stride;
    }
    return key;
  }

  uint64_t coarse_domain_size() const { return coarse_domain_size_; }

 private:
  struct Digit {
    uint64_t div = 1;     ///< Product of base radices packed after the digit.
    uint64_t radix = 1;   ///< The digit's own radix.
    uint64_t stride = 1;  ///< Product of coarse radices packed after it.
  };
  std::vector<Digit> digits_;
  uint64_t coarse_domain_size_ = 1;
};

/// Rolls `base` up to the cross-classification of `coarse_codec`'s columns
/// (a subset — in any order — of the base codec's columns, built against
/// the same schema). Every (cell, contribution) item of the base re-enters
/// the weighted partitioned aggregation under its projected key, so the
/// result is bit-identical to GroupCountByEstablishment on the coarse
/// columns directly, at the cost of |base items| instead of |table rows|.
Result<GroupedCounts> RollupGroupedCounts(const GroupedCounts& base,
                                          GroupKeyCodec coarse_codec,
                                          int num_threads = 1);

/// Plain-count form: rolls key-sorted (key, count) pairs in the base
/// codec's domain up to the coarse codec's domain. Bit-identical to
/// GroupCount on the coarse columns directly.
Result<std::vector<std::pair<uint64_t, int64_t>>> RollupKeyCounts(
    const std::vector<std::pair<uint64_t, int64_t>>& base,
    const GroupKeyCodec& base_codec, const GroupKeyCodec& coarse_codec,
    int num_threads = 1);

}  // namespace eep::table

#endif  // EEP_TABLE_ROLLUP_H_
