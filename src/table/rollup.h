// Data-cube roll-ups over grouped counts: derive the grouping of a coarser
// column subset from an already-computed finer grouping, without touching
// the base table again.
//
// A grouped count is a pure function of the (key, estab) multiset with
// integer weights, so re-aggregating the finer grouping's items under the
// projected coarse key yields EXACTLY the result a direct group-by on the
// coarse columns would produce — bit-identical cells, counts and
// contribution lists, for every thread count (see the determinism contract
// in partitioned_group_by.h and docs/ARCHITECTURE.md). This is what lets a
// workload of marginals share one full-table scan: compute the finest
// common cross-classification once, then roll every coarser marginal up
// from it (lodes/workload.h) or serve it from a cache (group_by_cache.h).
//
// Two execution paths, chosen automatically per roll-up:
//
//  * PREFIX MERGE — when the coarse columns are exactly the first k base
//    columns (same order), the projection is a plain division, so the
//    base's global key order is preserved. The roll-up is then ONE weighted
//    run-length merge pass over the base cells: no projection buffer, no
//    global re-sort (pathologically wide runs sort their own items
//    locally). Runs are split across workers at coarse-key boundaries.
//  * RE-SORT — any other subset/permutation: the base items are flattened
//    and projected in parallel (per-cell offsets make every worker's write
//    range disjoint) and re-aggregated through the weighted partitioned
//    engine.
//
// Both paths are exact integer re-aggregations of the same item multiset,
// so they agree bit for bit with each other and with a direct scan.
#ifndef EEP_TABLE_ROLLUP_H_
#define EEP_TABLE_ROLLUP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/group_by.h"

namespace eep::table {

/// \brief Arithmetic projection from a finer packed key domain onto a
/// coarser one: keeps the digits of the coarse codec's columns (in the
/// coarse codec's order, which may permute the base order) and sums out the
/// rest. Built once per roll-up; Project is a handful of multiply-divides
/// per key.
class KeyProjection {
 public:
  /// Requires every coarse column to appear in the base codec with the same
  /// radix (same dictionary); column order may differ.
  static Result<KeyProjection> Create(const GroupKeyCodec& base,
                                      const GroupKeyCodec& coarse);

  /// Projects one base key onto the coarse domain.
  uint64_t Project(uint64_t base_key) const {
    uint64_t key = 0;
    for (const Digit& d : digits_) {
      key += ((base_key / d.div) % d.radix) * d.stride;
    }
    return key;
  }

  uint64_t coarse_domain_size() const { return coarse_domain_size_; }

 private:
  struct Digit {
    uint64_t div = 1;     ///< Product of base radices packed after the digit.
    uint64_t radix = 1;   ///< The digit's own radix.
    uint64_t stride = 1;  ///< Product of coarse radices packed after it.
  };
  std::vector<Digit> digits_;
  uint64_t coarse_domain_size_ = 1;
};

/// \brief Which execution path served a roll-up.
enum class RollupKind {
  kPrefixMerge,  ///< Coarse = key prefix: one run-length merge pass.
  kResort,       ///< Parallel flatten + weighted partitioned re-sort.
};

/// True when `coarse`'s columns are exactly the first coarse.columns().size()
/// columns of `base`, in the same order (with matching radices) — the shape
/// whose projection is a plain division of the packed key, preserving the
/// base's global sort order. Identity (coarse == base) counts as a prefix.
bool IsKeyPrefix(const GroupKeyCodec& base, const GroupKeyCodec& coarse);

/// Column-list form of IsKeyPrefix, for planners that rank candidates
/// before building codecs (group_by_cache.cc, lodes/workload.cc). Radices
/// are implied equal when both lists come from the same table's schema.
bool IsColumnPrefix(const std::vector<std::string>& base,
                    const std::vector<std::string>& subset);

/// Rolls `base` up to the cross-classification of `coarse_codec`'s columns
/// (a subset — in any order — of the base codec's columns, built against
/// the same schema). Every (cell, contribution) item of the base re-enters
/// the weighted aggregation under its projected key, so the result is
/// bit-identical to GroupCountByEstablishment on the coarse columns
/// directly, at the cost of |base items| instead of |table rows|. When
/// `kind` is non-null it reports which path ran (prefix merge when the
/// coarse columns are a key prefix of the base, re-sort otherwise).
Result<GroupedCounts> RollupGroupedCounts(const GroupedCounts& base,
                                          GroupKeyCodec coarse_codec,
                                          int num_threads = 1,
                                          RollupKind* kind = nullptr);

/// Plain-count form: rolls key-sorted (key, count) pairs in the base
/// codec's domain up to the coarse codec's domain. Bit-identical to
/// GroupCount on the coarse columns directly. Prefix subsets reduce to a
/// single run-length pass over the sorted pairs.
Result<std::vector<std::pair<uint64_t, int64_t>>> RollupKeyCounts(
    const std::vector<std::pair<uint64_t, int64_t>>& base,
    const GroupKeyCodec& base_codec, const GroupKeyCodec& coarse_codec,
    int num_threads = 1, RollupKind* kind = nullptr);

/// \brief Shared cost model for choosing how to obtain a grouping, in
/// abstract units of "input elements touched". Used by GroupByCache to rank
/// a table scan against roll-ups from cached entries, and by the workload
/// cover-group planner (lodes/workload.cc) with *estimated* item counts.
/// The constants are calibrated on the paper-scale extract (see
/// docs/BENCHMARKS.md): a scan touches every row twice (key materialization
/// + run-compressed aggregation, where employer clustering shrinks the sort
/// input by an order of magnitude), a prefix merge touches every base item
/// once, and a re-sort roll-up pays flatten + scatter + radix passes over
/// items that no longer run-compress.
struct RollupCostModel {
  static constexpr double kScanPerRow = 2.0;
  static constexpr double kPrefixMergePerItem = 1.0;
  static constexpr double kResortPerItem = 4.0;

  static double Scan(size_t rows) { return kScanPerRow * double(rows); }
  static double PrefixMerge(size_t items) {
    return kPrefixMergePerItem * double(items);
  }
  static double Resort(size_t items) {
    return kResortPerItem * double(items);
  }
};

}  // namespace eep::table

#endif  // EEP_TABLE_ROLLUP_H_
