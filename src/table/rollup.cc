#include "table/rollup.h"

#include <algorithm>

#include "table/partitioned_group_by.h"

namespace eep::table {

Result<KeyProjection> KeyProjection::Create(const GroupKeyCodec& base,
                                            const GroupKeyCodec& coarse) {
  KeyProjection proj;
  proj.digits_.resize(coarse.columns().size());
  // Coarse strides, innermost digit last (mixed-radix place values).
  uint64_t stride = 1;
  for (size_t j = coarse.columns().size(); j-- > 0;) {
    proj.digits_[j].stride = stride;
    stride *= coarse.radices()[j];
  }
  proj.coarse_domain_size_ = stride;
  for (size_t j = 0; j < coarse.columns().size(); ++j) {
    const auto& name = coarse.columns()[j];
    const auto& base_columns = base.columns();
    const auto it = std::find(base_columns.begin(), base_columns.end(), name);
    if (it == base_columns.end()) {
      return Status::InvalidArgument("roll-up column '" + name +
                                     "' is not part of the base grouping");
    }
    const size_t i = static_cast<size_t>(it - base_columns.begin());
    if (base.radices()[i] != coarse.radices()[j]) {
      return Status::InvalidArgument(
          "roll-up column '" + name +
          "' has a different radix in the base grouping (different "
          "dictionary?)");
    }
    proj.digits_[j].radix = base.radices()[i];
    uint64_t div = 1;
    for (size_t k = i + 1; k < base.radices().size(); ++k) {
      div *= base.radices()[k];
    }
    proj.digits_[j].div = div;
  }
  return proj;
}

bool IsKeyPrefix(const GroupKeyCodec& base, const GroupKeyCodec& coarse) {
  const size_t k = coarse.columns().size();
  if (k > base.columns().size()) return false;
  for (size_t i = 0; i < k; ++i) {
    if (base.columns()[i] != coarse.columns()[i] ||
        base.radices()[i] != coarse.radices()[i]) {
      return false;
    }
  }
  return true;
}

bool IsColumnPrefix(const std::vector<std::string>& base,
                    const std::vector<std::string>& subset) {
  return subset.size() <= base.size() &&
         std::equal(subset.begin(), subset.end(), base.begin());
}

namespace {

/// Mixed-radix place value of the suffix summed out by a prefix roll-up:
/// coarse_key = base_key / divisor. Fits in uint64 because the full base
/// domain does.
uint64_t SuffixDivisor(const GroupKeyCodec& base, size_t prefix_columns) {
  uint64_t div = 1;
  for (size_t i = prefix_columns; i < base.radices().size(); ++i) {
    div *= base.radices()[i];
  }
  return div;
}

/// Splits [0, n) into `threads` chunks whose boundaries are advanced to the
/// next coarse-key-run boundary, so no run straddles two workers. The
/// boundary positions depend only on the cell keys (never on the thread
/// that computes them), and every run is merged wholly inside one chunk, so
/// concatenating the per-chunk outputs is independent of the chunk count —
/// the determinism contract of the prefix-merge path.
std::vector<size_t> RunAlignedBounds(const std::vector<GroupedCell>& cells,
                                     uint64_t divisor, int threads) {
  const size_t n = cells.size();
  std::vector<size_t> bounds(static_cast<size_t>(threads) + 1, n);
  bounds[0] = 0;
  for (int w = 1; w < threads; ++w) {
    size_t pos = n * static_cast<size_t>(w) / static_cast<size_t>(threads);
    pos = std::max(pos, bounds[static_cast<size_t>(w) - 1]);
    while (pos > 0 && pos < n &&
           cells[pos].key / divisor == cells[pos - 1].key / divisor) {
      ++pos;
    }
    bounds[static_cast<size_t>(w)] = pos;
  }
  return bounds;
}

/// Merges two estab-sorted contribution lists, summing counts of equal
/// establishment ids, into `out` (cleared first).
void MergeContributions(const std::vector<EstabContribution>& a,
                        const std::vector<EstabContribution>& b,
                        std::vector<EstabContribution>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].estab_id < b[j].estab_id) {
      out->push_back(a[i++]);
    } else if (b[j].estab_id < a[i].estab_id) {
      out->push_back(b[j++]);
    } else {
      out->push_back({a[i].estab_id, a[i].count + b[j].count});
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  out->insert(out->end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
}

/// Runs of more source cells than this gather their items and sort instead
/// of merging pairwise: sequential two-way merges touch the accumulated
/// list once per cell (Θ(k·m) for a run of k cells with m items), which
/// beats a sort only while k is small.
constexpr size_t kMaxSequentialMergeCells = 16;

/// The prefix-merge path: base cells are globally key-sorted and the coarse
/// key is base_key / divisor, so equal-coarse-key cells form contiguous
/// runs. Each run merges into ONE output cell — no projection buffer, no
/// global re-sort. Narrow runs (the common lattice case: the summed-out
/// suffix is a handful of combinations) merge their (estab-sorted)
/// contribution lists pairwise; wide runs gather their items and sort by
/// establishment, bounding the pass at O(m log m) per run instead of
/// Θ(k·m). Both run strategies sum the same integer multiset, so the
/// threshold — like the thread count — is invisible in the result.
GroupedCounts PrefixMergeRollup(const GroupedCounts& base,
                                GroupKeyCodec coarse_codec, int num_threads) {
  const uint64_t divisor =
      SuffixDivisor(base.codec, coarse_codec.columns().size());
  GroupedCounts result{std::move(coarse_codec), {}};
  const auto& cells = base.cells;
  if (cells.empty()) return result;
  const int threads = std::min<int>(ResolveGroupByThreads(num_threads),
                                    static_cast<int>(cells.size()));
  const std::vector<size_t> bounds = RunAlignedBounds(cells, divisor, threads);

  std::vector<std::vector<GroupedCell>> per_worker(
      static_cast<size_t>(threads));
  RunOnWorkers(threads, [&](int w) {
    const size_t begin = bounds[static_cast<size_t>(w)];
    const size_t end = bounds[static_cast<size_t>(w) + 1];
    auto& out = per_worker[static_cast<size_t>(w)];
    std::vector<EstabContribution> acc;
    std::vector<EstabContribution> merged;
    std::vector<EstabContribution> gathered;
    size_t i = begin;
    while (i < end) {
      const uint64_t coarse_key = cells[i].key / divisor;
      size_t j = i + 1;
      while (j < end && cells[j].key / divisor == coarse_key) ++j;
      GroupedCell cell;
      cell.key = coarse_key;
      if (j == i + 1) {
        // Single-cell run: the dominant case near the top of the lattice
        // (and the whole pass for an identity projection) — copy through.
        cell.count = cells[i].count;
        cell.contributions = cells[i].contributions;
      } else if (j - i <= kMaxSequentialMergeCells) {
        acc = cells[i].contributions;
        cell.count = cells[i].count;
        for (size_t c = i + 1; c < j; ++c) {
          MergeContributions(acc, cells[c].contributions, &merged);
          std::swap(acc, merged);
          cell.count += cells[c].count;
        }
        cell.contributions = std::move(acc);
      } else {
        // Wide run: gather + sort by establishment + weighted RLE. Summing
        // weights of equal estab ids is order-independent, so this agrees
        // bit for bit with the pairwise merge.
        gathered.clear();
        for (size_t c = i; c < j; ++c) {
          gathered.insert(gathered.end(), cells[c].contributions.begin(),
                          cells[c].contributions.end());
          cell.count += cells[c].count;
        }
        std::sort(gathered.begin(), gathered.end(),
                  [](const EstabContribution& a, const EstabContribution& b) {
                    return a.estab_id < b.estab_id;
                  });
        size_t g = 0;
        while (g < gathered.size()) {
          EstabContribution contrib = gathered[g];
          size_t h = g + 1;
          while (h < gathered.size() &&
                 gathered[h].estab_id == contrib.estab_id) {
            contrib.count += gathered[h++].count;
          }
          cell.contributions.push_back(contrib);
          g = h;
        }
      }
      out.push_back(std::move(cell));
      i = j;
    }
  });

  size_t total = 0;
  for (const auto& out : per_worker) total += out.size();
  result.cells.reserve(total);
  for (auto& out : per_worker) {
    std::move(out.begin(), out.end(), std::back_inserter(result.cells));
  }
  return result;
}

/// Item-balanced worker ranges over the base cells: worker w handles the
/// cell range whose flattened items start at roughly w/threads of the
/// total, so skewed contribution lists cannot serialize the flatten.
std::vector<size_t> ItemBalancedCellBounds(const std::vector<size_t>& offsets,
                                           int threads) {
  const size_t cells = offsets.size() - 1;
  const size_t items = offsets[cells];
  std::vector<size_t> bounds(static_cast<size_t>(threads) + 1, cells);
  bounds[0] = 0;
  for (int w = 1; w < threads; ++w) {
    const size_t target = items * static_cast<size_t>(w) /
                          static_cast<size_t>(threads);
    const auto it =
        std::lower_bound(offsets.begin(), offsets.end(), target);
    bounds[static_cast<size_t>(w)] =
        std::max(static_cast<size_t>(it - offsets.begin()),
                 bounds[static_cast<size_t>(w) - 1]);
  }
  return bounds;
}

}  // namespace

Result<GroupedCounts> RollupGroupedCounts(const GroupedCounts& base,
                                          GroupKeyCodec coarse_codec,
                                          int num_threads, RollupKind* kind) {
  EEP_ASSIGN_OR_RETURN(KeyProjection proj,
                       KeyProjection::Create(base.codec, coarse_codec));
  if (IsKeyPrefix(base.codec, coarse_codec)) {
    if (kind != nullptr) *kind = RollupKind::kPrefixMerge;
    return PrefixMergeRollup(base, std::move(coarse_codec), num_threads);
  }
  if (kind != nullptr) *kind = RollupKind::kResort;

  // Re-sort path: flatten + project the base items in parallel (the
  // per-cell offsets give every worker a disjoint write range), then
  // re-aggregate through the weighted partitioned engine.
  const size_t num_cells = base.cells.size();
  std::vector<size_t> offsets(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    offsets[c + 1] = offsets[c] + base.cells[c].contributions.size();
  }
  const size_t items = offsets[num_cells];
  std::vector<uint64_t> keys(items);
  std::vector<int64_t> estabs(items);
  std::vector<int64_t> weights(items);
  const int threads =
      std::min<int>(ResolveGroupByThreads(num_threads),
                    std::max<int>(1, static_cast<int>(num_cells)));
  const std::vector<size_t> bounds = ItemBalancedCellBounds(offsets, threads);
  // eep-lint: disjoint-writes -- worker w fills keys/estabs/weights at
  // slots [offsets[bounds[w]], offsets[bounds[w+1]]), a partition of the
  // flattened item range.
  RunOnWorkers(threads, [&](int w) {
    size_t slot = offsets[bounds[static_cast<size_t>(w)]];
    for (size_t c = bounds[static_cast<size_t>(w)];
         c < bounds[static_cast<size_t>(w) + 1]; ++c) {
      const GroupedCell& cell = base.cells[c];
      const uint64_t key = proj.Project(cell.key);
      for (const EstabContribution& contrib : cell.contributions) {
        keys[slot] = key;
        estabs[slot] = contrib.estab_id;
        weights[slot] = contrib.count;
        ++slot;
      }
    }
  });
  GroupedCounts result{std::move(coarse_codec), {}};
  result.cells =
      AggregateWeightedByKeyAndEstab(std::move(keys), estabs, weights,
                                     proj.coarse_domain_size(), num_threads);
  return result;
}

Result<std::vector<std::pair<uint64_t, int64_t>>> RollupKeyCounts(
    const std::vector<std::pair<uint64_t, int64_t>>& base,
    const GroupKeyCodec& base_codec, const GroupKeyCodec& coarse_codec,
    int num_threads, RollupKind* kind) {
  EEP_ASSIGN_OR_RETURN(KeyProjection proj,
                       KeyProjection::Create(base_codec, coarse_codec));
  if (IsKeyPrefix(base_codec, coarse_codec)) {
    // Key-sorted input + division projection = one run-length pass; with no
    // establishment lists to merge there is nothing else to do.
    if (kind != nullptr) *kind = RollupKind::kPrefixMerge;
    const uint64_t divisor =
        SuffixDivisor(base_codec, coarse_codec.columns().size());
    std::vector<std::pair<uint64_t, int64_t>> result;
    size_t i = 0;
    while (i < base.size()) {
      const uint64_t key = base[i].first / divisor;
      int64_t count = 0;
      while (i < base.size() && base[i].first / divisor == key) {
        count += base[i++].second;
      }
      result.emplace_back(key, count);
    }
    return result;
  }
  if (kind != nullptr) *kind = RollupKind::kResort;
  std::vector<uint64_t> keys(base.size());
  std::vector<int64_t> weights(base.size());
  const int threads =
      std::min<int>(ResolveGroupByThreads(num_threads),
                    std::max<int>(1, static_cast<int>(base.size())));
  const size_t block = (base.size() + static_cast<size_t>(threads) - 1) /
                       static_cast<size_t>(threads);
  // eep-lint: disjoint-writes -- worker w projects into keys/weights at
  // [begin, end) only, its contiguous block of base items.
  RunOnWorkers(threads, [&](int w) {
    const size_t begin = static_cast<size_t>(w) * block;
    const size_t end = std::min(base.size(), begin + block);
    for (size_t i = begin; i < end; ++i) {
      keys[i] = proj.Project(base[i].first);
      weights[i] = base[i].second;
    }
  });
  return AggregateWeightedByKey(std::move(keys), weights,
                                proj.coarse_domain_size(), num_threads);
}

}  // namespace eep::table
