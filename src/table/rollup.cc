#include "table/rollup.h"

#include <algorithm>

#include "table/partitioned_group_by.h"

namespace eep::table {

Result<KeyProjection> KeyProjection::Create(const GroupKeyCodec& base,
                                            const GroupKeyCodec& coarse) {
  KeyProjection proj;
  proj.digits_.resize(coarse.columns().size());
  // Coarse strides, innermost digit last (mixed-radix place values).
  uint64_t stride = 1;
  for (size_t j = coarse.columns().size(); j-- > 0;) {
    proj.digits_[j].stride = stride;
    stride *= coarse.radices()[j];
  }
  proj.coarse_domain_size_ = stride;
  for (size_t j = 0; j < coarse.columns().size(); ++j) {
    const auto& name = coarse.columns()[j];
    const auto& base_columns = base.columns();
    const auto it = std::find(base_columns.begin(), base_columns.end(), name);
    if (it == base_columns.end()) {
      return Status::InvalidArgument("roll-up column '" + name +
                                     "' is not part of the base grouping");
    }
    const size_t i = static_cast<size_t>(it - base_columns.begin());
    if (base.radices()[i] != coarse.radices()[j]) {
      return Status::InvalidArgument(
          "roll-up column '" + name +
          "' has a different radix in the base grouping (different "
          "dictionary?)");
    }
    proj.digits_[j].radix = base.radices()[i];
    uint64_t div = 1;
    for (size_t k = i + 1; k < base.radices().size(); ++k) {
      div *= base.radices()[k];
    }
    proj.digits_[j].div = div;
  }
  return proj;
}

Result<GroupedCounts> RollupGroupedCounts(const GroupedCounts& base,
                                          GroupKeyCodec coarse_codec,
                                          int num_threads) {
  EEP_ASSIGN_OR_RETURN(KeyProjection proj,
                       KeyProjection::Create(base.codec, coarse_codec));
  size_t items = 0;
  for (const GroupedCell& cell : base.cells) items += cell.contributions.size();
  std::vector<uint64_t> keys;
  std::vector<int64_t> estabs;
  std::vector<int64_t> weights;
  keys.reserve(items);
  estabs.reserve(items);
  weights.reserve(items);
  for (const GroupedCell& cell : base.cells) {
    const uint64_t key = proj.Project(cell.key);
    for (const EstabContribution& c : cell.contributions) {
      keys.push_back(key);
      estabs.push_back(c.estab_id);
      weights.push_back(c.count);
    }
  }
  GroupedCounts result{std::move(coarse_codec), {}};
  result.cells =
      AggregateWeightedByKeyAndEstab(std::move(keys), estabs, weights,
                                     proj.coarse_domain_size(), num_threads);
  return result;
}

Result<std::vector<std::pair<uint64_t, int64_t>>> RollupKeyCounts(
    const std::vector<std::pair<uint64_t, int64_t>>& base,
    const GroupKeyCodec& base_codec, const GroupKeyCodec& coarse_codec,
    int num_threads) {
  EEP_ASSIGN_OR_RETURN(KeyProjection proj,
                       KeyProjection::Create(base_codec, coarse_codec));
  std::vector<uint64_t> keys;
  std::vector<int64_t> weights;
  keys.reserve(base.size());
  weights.reserve(base.size());
  for (const auto& [key, count] : base) {
    keys.push_back(proj.Project(key));
    weights.push_back(count);
  }
  return AggregateWeightedByKey(std::move(keys), weights,
                                proj.coarse_domain_size(), num_threads);
}

}  // namespace eep::table
