#include "table/group_by_cache.h"

#include <algorithm>

#include "table/rollup.h"

namespace eep::table {

namespace {

bool Covers(const std::vector<std::string>& superset,
            const std::vector<std::string>& subset) {
  return std::all_of(subset.begin(), subset.end(), [&](const auto& col) {
    return std::find(superset.begin(), superset.end(), col) != superset.end();
  });
}

size_t CountItems(const GroupedCounts& grouped) {
  size_t items = 0;
  for (const GroupedCell& cell : grouped.cells) {
    items += cell.contributions.size();
  }
  return items;
}

/// Modeled cost of serving `columns` by roll-up from a cached entry with
/// `items` items — the one formula both entry families rank with.
double RollupCandidateCost(const std::vector<std::string>& cached_columns,
                           const std::vector<std::string>& columns,
                           size_t items) {
  return IsColumnPrefix(cached_columns, columns)
             ? RollupCostModel::PrefixMerge(items)
             : RollupCostModel::Resort(items);
}

/// Books a roll-up that ran: the kind the roll-up reports always agrees
/// with the column-level prefix test the ranking used.
void RecordRollupServed(RollupKind kind, GroupByCache::Stats* stats,
                        GroupByCache::Outcome* outcome) {
  if (kind == RollupKind::kPrefixMerge) {
    ++stats->prefix_merges;
    if (outcome != nullptr) *outcome = GroupByCache::Outcome::kPrefixMerge;
  } else {
    ++stats->rollups;
    if (outcome != nullptr) *outcome = GroupByCache::Outcome::kRollup;
  }
}

}  // namespace

Result<std::shared_ptr<const GroupedCounts>> GroupByCache::GetOrCompute(
    const Table& table, const std::vector<std::string>& columns,
    const std::string& estab_id_column, const GroupByOptions& options,
    Outcome* outcome, std::vector<std::string>* source_columns) {
  if (source_columns != nullptr) source_columns->clear();
  // Holding the lock across the compute serializes concurrent misses — the
  // point of the cache is to do the expensive work once, and letting two
  // callers race the same scan would waste exactly what it exists to save.
  std::lock_guard<std::mutex> lock(mu_);
  if (table_ == nullptr) {
    table_ = &table;
    estab_id_column_ = estab_id_column;
  } else if (table_ != &table || estab_id_column_ != estab_id_column) {
    return Status::InvalidArgument(
        "GroupByCache is bound to a different table or establishment "
        "column; use one cache per dataset");
  }

  if (auto it = entries_.find(columns); it != entries_.end()) {
    ++stats_.exact_hits;
    if (outcome != nullptr) *outcome = Outcome::kExactHit;
    return it->second.grouped;
  }

  // Rank every covering cached grouping against a fresh scan by the shared
  // cost model: prefix-merge roll-ups touch each cached item once, re-sort
  // roll-ups several times, a scan touches each row (twice, but the sort
  // input run-compresses). Ties go to the roll-up — it never re-reads the
  // table. Every plan is an exact aggregation of the same row multiset, so
  // the choice is invisible in the result.
  const Entry* source = nullptr;
  const std::vector<std::string>* source_key = nullptr;
  double best_cost = RollupCostModel::Scan(table.num_rows());
  for (const auto& [cached_columns, entry] : entries_) {
    if (!Covers(cached_columns, columns)) continue;
    const double cost =
        RollupCandidateCost(cached_columns, columns, entry.num_items);
    if (source == nullptr ? cost <= best_cost : cost < best_cost) {
      source = &entry;
      source_key = &cached_columns;
      best_cost = cost;
    }
  }

  Entry entry;
  if (source != nullptr) {
    EEP_ASSIGN_OR_RETURN(GroupKeyCodec codec,
                         GroupKeyCodec::Create(table.schema(), columns));
    RollupKind kind;
    EEP_ASSIGN_OR_RETURN(GroupedCounts rolled,
                         RollupGroupedCounts(*source->grouped,
                                             std::move(codec),
                                             options.num_threads, &kind));
    entry.grouped = std::make_shared<const GroupedCounts>(std::move(rolled));
    RecordRollupServed(kind, &stats_, outcome);
    if (source_columns != nullptr) *source_columns = *source_key;
  } else {
    EEP_ASSIGN_OR_RETURN(GroupedCounts grouped,
                         GroupCountByEstablishment(table, columns,
                                                   estab_id_column, options));
    entry.grouped = std::make_shared<const GroupedCounts>(std::move(grouped));
    ++stats_.scans;
    if (outcome != nullptr) *outcome = Outcome::kScan;
  }
  entry.num_items = CountItems(*entry.grouped);
  return entries_.emplace(columns, std::move(entry)).first->second.grouped;
}

Result<std::shared_ptr<const std::vector<std::pair<uint64_t, int64_t>>>>
GroupByCache::GetOrComputeKeyCounts(const Table& table,
                                    const std::vector<std::string>& columns,
                                    const GroupByOptions& options,
                                    Outcome* outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (keycount_table_ == nullptr) {
    keycount_table_ = &table;
  } else if (keycount_table_ != &table) {
    return Status::InvalidArgument(
        "GroupByCache key-count entries are bound to a different table; "
        "use one cache per dataset");
  }

  if (auto it = keycount_entries_.find(columns);
      it != keycount_entries_.end()) {
    ++stats_.exact_hits;
    if (outcome != nullptr) *outcome = Outcome::kExactHit;
    return it->second.counts;
  }

  // Same cost-model ranking as GetOrCompute, with the entry's pair count
  // as the item count.
  const KeyCountEntry* source = nullptr;
  double best_cost = RollupCostModel::Scan(table.num_rows());
  for (const auto& [cached_columns, entry] : keycount_entries_) {
    if (!Covers(cached_columns, columns)) continue;
    const double cost =
        RollupCandidateCost(cached_columns, columns, entry.counts->size());
    if (source == nullptr ? cost <= best_cost : cost < best_cost) {
      source = &entry;
      best_cost = cost;
    }
  }

  EEP_ASSIGN_OR_RETURN(GroupKeyCodec codec,
                       GroupKeyCodec::Create(table.schema(), columns));
  std::vector<std::pair<uint64_t, int64_t>> counts;
  if (source != nullptr) {
    RollupKind kind;
    EEP_ASSIGN_OR_RETURN(counts,
                         RollupKeyCounts(*source->counts, source->codec,
                                         codec, options.num_threads, &kind));
    RecordRollupServed(kind, &stats_, outcome);
  } else {
    EEP_ASSIGN_OR_RETURN(counts, GroupCount(table, codec, options));
    ++stats_.scans;
    if (outcome != nullptr) *outcome = Outcome::kScan;
  }
  KeyCountEntry entry{
      std::make_shared<const std::vector<std::pair<uint64_t, int64_t>>>(
          std::move(counts)),
      std::move(codec)};
  return keycount_entries_.emplace(columns, std::move(entry))
      .first->second.counts;
}

GroupByCache::Stats GroupByCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GroupByCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  table_ = nullptr;
  estab_id_column_.clear();
  entries_.clear();
  keycount_table_ = nullptr;
  keycount_entries_.clear();
  stats_ = Stats{};
}

}  // namespace eep::table
