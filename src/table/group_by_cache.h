// A grouped-cell cache over one table: repeated group-bys skip the scan.
//
// The cache exploits the roll-up lattice (rollup.h): a request is served by
// an exact cached match when one exists; otherwise every cached grouping
// whose column set covers the request is a roll-up candidate, ranked
// against a fresh table scan by the shared cost model
// (table::RollupCostModel) — prefix-merge roll-ups are cheap linear
// passes, re-sort roll-ups pay several passes per item, and a scan pays
// per row but run-compresses. The cheapest plan wins, so a pathologically
// wide cached grouping (~one item per row) no longer shadows a cheaper
// re-scan the way a fewest-items rule did. Because the engine and both
// roll-up paths are exact integer aggregations of the same row multiset,
// every plan returns bit-identical results — callers cannot observe which
// one served them except through stats(). Entries are shared_ptrs, so a
// workload holding a marginal alive keeps only that grouping pinned.
//
// The cache binds to the first (table, estab column) it serves and rejects
// other tables: grouped counts are only reusable against the identical row
// multiset. It is NOT invalidated by mutation of the underlying table —
// callers own that (tables here are immutable after dataset construction).
// All methods are thread-safe.
#ifndef EEP_TABLE_GROUP_BY_CACHE_H_
#define EEP_TABLE_GROUP_BY_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/group_by.h"

namespace eep::table {

class GroupByCache {
 public:
  /// How a GetOrCompute call was served.
  enum class Outcome {
    kExactHit,     ///< Cached grouping with exactly these columns.
    kPrefixMerge,  ///< Run-length merge from a cached prefix superset.
    kRollup,       ///< Re-sort roll-up from a cached superset; no scan.
    kScan,         ///< Full table scan (GroupCountByEstablishment).
  };

  struct Stats {
    size_t exact_hits = 0;
    size_t prefix_merges = 0;
    size_t rollups = 0;  ///< Re-sort roll-ups (prefix merges counted apart).
    size_t scans = 0;
  };

  /// Returns the grouping of `columns` over `table`, choosing the cheapest
  /// plan under RollupCostModel: an exact cached match, a prefix-merge or
  /// re-sort roll-up from a covering cached grouping, or a fresh table
  /// scan (also taken when a covering entry exists but rolling up from it
  /// is modeled as dearer than re-scanning). `outcome`, when non-null,
  /// reports which path served the call; `source_columns`, when non-null,
  /// receives the covering entry a kPrefixMerge/kRollup was derived from
  /// (it is cleared otherwise). Results are cached under their exact
  /// ordered column list; the same columns in a different order are a
  /// different grouping (different key packing) but still roll up from
  /// each other without a scan.
  Result<std::shared_ptr<const GroupedCounts>> GetOrCompute(
      const Table& table, const std::vector<std::string>& columns,
      const std::string& estab_id_column, const GroupByOptions& options = {},
      Outcome* outcome = nullptr,
      std::vector<std::string>* source_columns = nullptr);

  /// Same serving policy for plain (key, count) groupings (GroupCount /
  /// RollupKeyCounts), over their own table — typically the Workplace
  /// table whose distinct attribute combinations define the released cell
  /// domain, scanned once and projected per marginal. Outcomes count into
  /// the same stats() as the establishment groupings.
  Result<std::shared_ptr<const std::vector<std::pair<uint64_t, int64_t>>>>
  GetOrComputeKeyCounts(const Table& table,
                        const std::vector<std::string>& columns,
                        const GroupByOptions& options = {},
                        Outcome* outcome = nullptr);

  Stats stats() const;

  /// Drops all entries and the table bindings.
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const GroupedCounts> grouped;
    size_t num_items = 0;  ///< Total contributions: roll-up input size.
  };
  struct KeyCountEntry {
    std::shared_ptr<const std::vector<std::pair<uint64_t, int64_t>>> counts;
    GroupKeyCodec codec;  ///< Needed to roll the entry up further.
  };

  mutable std::mutex mu_;
  const Table* table_ = nullptr;
  std::string estab_id_column_;
  std::map<std::vector<std::string>, Entry> entries_;
  const Table* keycount_table_ = nullptr;
  std::map<std::vector<std::string>, KeyCountEntry> keycount_entries_;
  Stats stats_;
};

}  // namespace eep::table

#endif  // EEP_TABLE_GROUP_BY_CACHE_H_
