// Parallel partitioned aggregation: the execution engine behind the
// group-by entry points in group_by.h.
//
// The pipeline is columnar and sort-based instead of hash-based:
//
//   1. MaterializeGroupKeys packs every row's group key with one contiguous
//      loop per group column (auto-vectorizable; no per-row gather).
//   2. Aggregate* range-partitions the rows by key (partition p holds keys
//      in [p, p+1) * domain/P), sorts each partition — as packed
//      (key, estab) uint64s through an LSD radix sort when they fit in one
//      word, as (key, estab) pairs through std::sort otherwise — and
//      run-length aggregates the sorted runs.
//   3. Partitions concatenate in order, so the result is globally
//      key-sorted without a merge.
//
// Determinism contract: the output depends only on the multiset of input
// rows — range partitioning preserves key order across partitions and the
// per-partition result is a function of the partition's multiset alone —
// so it is bit-identical for every thread count and partition count. The
// release pipeline's cross-thread-count reproducibility guarantee and the
// exactness of the cube roll-ups (rollup.h) rely on this; see
// docs/ARCHITECTURE.md, "Thread/partition-invariant group-by".
#ifndef EEP_TABLE_PARTITIONED_GROUP_BY_H_
#define EEP_TABLE_PARTITIONED_GROUP_BY_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "table/group_by.h"
#include "table/table.h"

namespace eep::table {

/// Resolves a requested worker count: values <= 0 mean
/// std::thread::hardware_concurrency() (at least 1).
int ResolveGroupByThreads(int num_threads);

/// Runs fn(worker_index) for worker_index in [0, threads); the caller's
/// thread is worker 0. The work split across workers must never affect
/// results — every parallel phase in this engine (and in rollup.cc) keeps
/// the determinism contract by making each worker's output a pure function
/// of a key-range of the input.
void RunOnWorkers(int threads, const std::function<void(int)>& fn);

/// Columnwise fused key packing: keys[row] = codec.Pack(codes of row),
/// computed as one contiguous multiply-add sweep per group column.
/// `codec` must have been created against `table`'s schema. Splits the row
/// range across `num_threads` workers (<= 0 means hardware concurrency);
/// the result is identical for every thread count.
std::vector<uint64_t> MaterializeGroupKeys(const Table& table,
                                           const GroupKeyCodec& codec,
                                           int num_threads);

/// Aggregates (keys[i], estab_ids[i]) pairs into key-sorted cells with
/// estab-sorted contribution lists. Requires keys[i] < domain_size and
/// estab_ids.size() == keys.size(). Consumes `keys` (it is reused as
/// scratch). Deterministic for every thread count.
std::vector<GroupedCell> AggregateByKeyAndEstab(
    std::vector<uint64_t> keys, const std::vector<int64_t>& estab_ids,
    uint64_t domain_size, int num_threads);

/// Aggregates keys alone into (key, count) runs sorted by key. Requires
/// keys[i] < domain_size. Consumes `keys`. Deterministic for every thread
/// count.
std::vector<std::pair<uint64_t, int64_t>> AggregateByKey(
    std::vector<uint64_t> keys, uint64_t domain_size, int num_threads);

/// Weighted form of AggregateByKeyAndEstab: item i carries weights[i]
/// instead of an implicit weight of 1, so already-aggregated inputs (e.g.
/// the contribution items of a finer grouping being rolled up to a coarser
/// key domain — see rollup.h) re-aggregate through the same run-compression
/// and partitioned-sort machinery. Weights sum per (key, estab) pair; the
/// result is exactly what AggregateByKeyAndEstab would return on the
/// expansion of each item into weights[i] unit rows, and is deterministic
/// for every thread count. Requires weights.size() == keys.size().
std::vector<GroupedCell> AggregateWeightedByKeyAndEstab(
    std::vector<uint64_t> keys, const std::vector<int64_t>& estab_ids,
    const std::vector<int64_t>& weights, uint64_t domain_size,
    int num_threads);

/// Weighted form of AggregateByKey, same contract as above without the
/// establishment breakdown.
std::vector<std::pair<uint64_t, int64_t>> AggregateWeightedByKey(
    std::vector<uint64_t> keys, const std::vector<int64_t>& weights,
    uint64_t domain_size, int num_threads);

}  // namespace eep::table

#endif  // EEP_TABLE_PARTITIONED_GROUP_BY_H_
