// Column storage for the in-memory columnar engine.
#ifndef EEP_TABLE_COLUMN_H_
#define EEP_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "table/schema.h"

namespace eep::table {

/// \brief One column of a Table: typed, contiguous storage.
///
/// A Column owns its values. Type mismatches between a Column and the
/// accessor used on it are programming errors and abort in debug builds;
/// the checked `As*` accessors return Status instead.
class Column {
 public:
  static Column OfInt64(std::vector<int64_t> values);
  static Column OfDouble(std::vector<double> values);
  static Column OfString(std::vector<std::string> values);
  static Column OfCategory(std::vector<uint32_t> codes);

  DataType type() const;
  size_t size() const;

  /// Unchecked typed views (UB on type mismatch; use in hot loops after
  /// validating the schema once).
  const std::vector<int64_t>& int64s() const {
    return std::get<std::vector<int64_t>>(values_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(values_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(values_);
  }
  const std::vector<uint32_t>& codes() const {
    return std::get<std::vector<uint32_t>>(values_);
  }

  /// Checked typed views.
  Result<const std::vector<int64_t>*> AsInt64() const;
  Result<const std::vector<double>*> AsDouble() const;
  Result<const std::vector<std::string>*> AsString() const;
  Result<const std::vector<uint32_t>*> AsCategory() const;

  /// A copy of this column keeping only rows where mask[i] is true.
  /// mask.size() must equal size().
  Column FilterCopy(const std::vector<bool>& mask) const;

  /// A copy of this column with rows gathered by `indices` (values may
  /// repeat, enabling join output materialization).
  Column TakeCopy(const std::vector<uint32_t>& indices) const;

 private:
  using Storage = std::variant<std::vector<int64_t>, std::vector<double>,
                               std::vector<std::string>,
                               std::vector<uint32_t>>;
  explicit Column(Storage values) : values_(std::move(values)) {}
  Storage values_;
};

}  // namespace eep::table

#endif  // EEP_TABLE_COLUMN_H_
