#include "table/column.h"

namespace eep::table {

Column Column::OfInt64(std::vector<int64_t> values) {
  return Column(Storage(std::move(values)));
}
Column Column::OfDouble(std::vector<double> values) {
  return Column(Storage(std::move(values)));
}
Column Column::OfString(std::vector<std::string> values) {
  return Column(Storage(std::move(values)));
}
Column Column::OfCategory(std::vector<uint32_t> codes) {
  return Column(Storage(std::move(codes)));
}

DataType Column::type() const {
  switch (values_.index()) {
    case 0: return DataType::kInt64;
    case 1: return DataType::kDouble;
    case 2: return DataType::kString;
    default: return DataType::kCategory;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, values_);
}

Result<const std::vector<int64_t>*> Column::AsInt64() const {
  if (auto* v = std::get_if<std::vector<int64_t>>(&values_)) return v;
  return Status::InvalidArgument("column is not int64");
}
Result<const std::vector<double>*> Column::AsDouble() const {
  if (auto* v = std::get_if<std::vector<double>>(&values_)) return v;
  return Status::InvalidArgument("column is not double");
}
Result<const std::vector<std::string>*> Column::AsString() const {
  if (auto* v = std::get_if<std::vector<std::string>>(&values_)) return v;
  return Status::InvalidArgument("column is not string");
}
Result<const std::vector<uint32_t>*> Column::AsCategory() const {
  if (auto* v = std::get_if<std::vector<uint32_t>>(&values_)) return v;
  return Status::InvalidArgument("column is not category");
}

Column Column::FilterCopy(const std::vector<bool>& mask) const {
  return std::visit(
      [&mask](const auto& values) {
        using Vec = std::decay_t<decltype(values)>;
        Vec out;
        for (size_t i = 0; i < values.size(); ++i) {
          if (mask[i]) out.push_back(values[i]);
        }
        return Column(Storage(std::move(out)));
      },
      values_);
}

Column Column::TakeCopy(const std::vector<uint32_t>& indices) const {
  return std::visit(
      [&indices](const auto& values) {
        using Vec = std::decay_t<decltype(values)>;
        Vec out;
        out.reserve(indices.size());
        for (uint32_t idx : indices) out.push_back(values[idx]);
        return Column(Storage(std::move(out)));
      },
      values_);
}

}  // namespace eep::table
