#include "table/partitioned_group_by.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <iterator>
#include <limits>
#include <thread>

namespace eep::table {
namespace {

// Rows per partition the planner aims for: small enough that a partition's
// working set stays cache-resident while it is sorted, large enough that
// per-partition overhead amortizes.
constexpr size_t kTargetPartitionRows = size_t{1} << 16;
constexpr size_t kMaxPartitions = 1024;

// Runs fn(worker_index) on `threads` workers; the caller is worker 0.
template <typename Fn>
void RunWorkers(int threads, Fn&& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int w = 1; w < threads; ++w) pool.emplace_back([&fn, w] { fn(w); });
  fn(0);
  for (auto& t : pool) t.join();
}

int BitWidth(uint64_t v) { return v == 0 ? 0 : 64 - __builtin_clzll(v); }

struct PartitionPlan {
  int threads = 1;
  /// Keys are range-partitioned by their high bits: p = key >> shift.
  /// Every partition holds a contiguous key range, which is what makes
  /// concatenating sorted partitions globally sorted — and the shift makes
  /// the per-row partition function one instruction.
  int shift = 0;
  size_t num_partitions = 1;
  size_t block_size = 0;  // rows per worker block
};

// The plan affects only execution, never the result: the aggregate of each
// key range is a function of its row multiset, so any (threads, partitions)
// choice concatenates to the same output.
PartitionPlan PlanFor(size_t n, uint64_t domain, int num_threads) {
  PartitionPlan plan;
  plan.threads = ResolveGroupByThreads(num_threads);
  const size_t target =
      std::min(kMaxPartitions,
               std::max<size_t>(n / kTargetPartitionRows + 1,
                                static_cast<size_t>(plan.threads)));
  const int key_bits = BitWidth(domain - 1);
  const int partition_bits = BitWidth(target - 1);
  // Cap at 63: a 64-bit shift is UB, and for 64-bit key domains a shift of
  // 63 still leaves at most two partitions.
  plan.shift = std::min(63, std::max(0, key_bits - partition_bits));
  plan.num_partitions = ((domain - 1) >> plan.shift) + 1;
  plan.block_size = (n + static_cast<size_t>(plan.threads) - 1) /
                    static_cast<size_t>(plan.threads);
  return plan;
}

/// One worker block's run-compressed rows: consecutive rows with the same
/// (key, estab) collapse into one weighted item. Real LODES extracts are
/// clustered by employer — every row of an establishment shares its
/// workplace attributes — so this typically shrinks the sort input by an
/// order of magnitude; in the worst case (fully shuffled rows) it degrades
/// to one item per row for the cost of one predictable compare per row.
/// Splitting a run at a block boundary only splits its weight, and the
/// per-partition aggregation sums weights per pair, so the final result is
/// independent of the block layout (= thread count).
struct CompressedBlock {
  std::vector<uint64_t> keys;
  std::vector<int64_t> estabs;
  std::vector<int64_t> weights;
  std::vector<size_t> hist;  // items per partition
  int64_t min_estab = std::numeric_limits<int64_t>::max();
  int64_t max_estab = std::numeric_limits<int64_t>::min();
};

// LSD radix sort of vals[0..n) restricted to the low `used_bytes` bytes
// (the caller knows how many carry bits), additionally skipping bytes on
// which all values agree — e.g. high key bytes shared by a whole
// partition. weights[i] travels with vals[i].
void RadixSortWithWeights(uint64_t* vals, int64_t* weights, size_t n,
                          int used_bytes, std::vector<uint64_t>& val_scratch,
                          std::vector<int64_t>& weight_scratch) {
  if (n < 128) {
    std::vector<std::pair<uint64_t, int64_t>> tmp(n);
    for (size_t i = 0; i < n; ++i) tmp[i] = {vals[i], weights[i]};
    std::sort(tmp.begin(), tmp.end(),
              [](const std::pair<uint64_t, int64_t>& a,
                 const std::pair<uint64_t, int64_t>& b) {
                return a.first < b.first;
              });
    for (size_t i = 0; i < n; ++i) {
      vals[i] = tmp[i].first;
      weights[i] = tmp[i].second;
    }
    return;
  }
  size_t hist[8][256] = {};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = vals[i];
    for (int b = 0; b < used_bytes; ++b) ++hist[b][(x >> (8 * b)) & 0xff];
  }
  if (val_scratch.size() < n) val_scratch.resize(n);
  if (weight_scratch.size() < n) weight_scratch.resize(n);
  uint64_t* vsrc = vals;
  uint64_t* vdst = val_scratch.data();
  int64_t* wsrc = weights;
  int64_t* wdst = weight_scratch.data();
  for (int b = 0; b < used_bytes; ++b) {
    // vsrc holds a permutation of the original values, so testing vsrc[0]'s
    // bucket against n detects a constant byte.
    if (hist[b][(vsrc[0] >> (8 * b)) & 0xff] == n) continue;
    size_t offsets[256];
    size_t run = 0;
    for (int d = 0; d < 256; ++d) {
      offsets[d] = run;
      run += hist[b][d];
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t slot = offsets[(vsrc[i] >> (8 * b)) & 0xff]++;
      vdst[slot] = vsrc[i];
      wdst[slot] = wsrc[i];
    }
    std::swap(vsrc, vdst);
    std::swap(wsrc, wdst);
  }
  if (vsrc != vals) {
    std::memcpy(vals, vsrc, n * sizeof(uint64_t));
    std::memcpy(weights, wsrc, n * sizeof(int64_t));
  }
}

// Sorted weighted packed (key << estab_bits | estab) items -> cells, one
// per key run, with contributions in estab order (inherited from the sort)
// and counts as weight sums.
void RlePacked(const uint64_t* vals, const int64_t* weights, size_t n,
               int estab_bits, std::vector<GroupedCell>* out) {
  const uint64_t mask =
      estab_bits == 0 ? 0 : (~uint64_t{0} >> (64 - estab_bits));
  size_t i = 0;
  while (i < n) {
    const uint64_t key = vals[i] >> estab_bits;
    GroupedCell cell;
    cell.key = key;
    while (i < n && (vals[i] >> estab_bits) == key) {
      const uint64_t packed = vals[i];
      int64_t weight = weights[i];
      size_t j = i + 1;
      while (j < n && vals[j] == packed) weight += weights[j++];
      cell.contributions.push_back(
          {static_cast<int64_t>(packed & mask), weight});
      cell.count += weight;
      i = j;
    }
    out->push_back(std::move(cell));
  }
}

struct KeyEstabWeight {
  uint64_t key;
  int64_t estab;
  int64_t weight;
};

void RleTriples(const KeyEstabWeight* v, size_t n,
                std::vector<GroupedCell>* out) {
  size_t i = 0;
  while (i < n) {
    const uint64_t key = v[i].key;
    GroupedCell cell;
    cell.key = key;
    while (i < n && v[i].key == key) {
      const int64_t estab = v[i].estab;
      int64_t weight = v[i].weight;
      size_t j = i + 1;
      while (j < n && v[j].key == key && v[j].estab == estab) {
        weight += v[j++].weight;
      }
      cell.contributions.push_back({estab, weight});
      cell.count += weight;
      i = j;
    }
    out->push_back(std::move(cell));
  }
}

std::vector<GroupedCell> ConcatPartitions(
    std::vector<std::vector<GroupedCell>> per_partition) {
  size_t total = 0;
  for (const auto& cells : per_partition) total += cells.size();
  std::vector<GroupedCell> result;
  result.reserve(total);
  for (auto& cells : per_partition) {
    std::move(cells.begin(), cells.end(), std::back_inserter(result));
  }
  return result;
}

// Converts per-block item histograms into scatter cursors (partition-major,
// block-minor) so every (block, partition) writes a disjoint slice of the
// scattered arrays. Returns partition start offsets (size P + 1).
std::vector<size_t> CursorsFromHists(std::vector<CompressedBlock>* blocks,
                                     size_t num_partitions) {
  std::vector<size_t> starts(num_partitions + 1, 0);
  size_t run = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    starts[p] = run;
    for (auto& block : *blocks) {
      const size_t count = block.hist[p];
      block.hist[p] = run;
      run += count;
    }
  }
  starts[num_partitions] = run;
  return starts;
}

}  // namespace

int ResolveGroupByThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void RunOnWorkers(int threads, const std::function<void(int)>& fn) {
  RunWorkers(threads, fn);
}

std::vector<uint64_t> MaterializeGroupKeys(const Table& table,
                                           const GroupKeyCodec& codec,
                                           int num_threads) {
  const size_t n = table.num_rows();
  std::vector<uint64_t> keys(n);
  if (n == 0) return keys;
  std::vector<const uint32_t*> columns;
  columns.reserve(codec.column_indices().size());
  for (size_t idx : codec.column_indices()) {
    columns.push_back(table.column(idx).codes().data());
  }
  const auto& radices = codec.radices();
  const int threads = ResolveGroupByThreads(num_threads);
  const size_t block =
      (n + static_cast<size_t>(threads) - 1) / static_cast<size_t>(threads);
  // eep-lint: disjoint-writes -- worker w writes keys[begin, end) only,
  // its contiguous row block; blocks partition [0, n).
  RunWorkers(threads, [&](int w) {
    const size_t begin = static_cast<size_t>(w) * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) return;
    const uint32_t* c0 = columns[0];
    for (size_t i = begin; i < end; ++i) keys[i] = c0[i];
    for (size_t c = 1; c < columns.size(); ++c) {
      const uint64_t radix = radices[c];
      const uint32_t* cc = columns[c];
      for (size_t i = begin; i < end; ++i) keys[i] = keys[i] * radix + cc[i];
    }
  });
  return keys;
}

namespace {

/// Weight of one input item in the run-compression phase: the unweighted
/// entry points count each row once, the weighted ones read the caller's
/// weight array. Summing weights over a run generalizes the original
/// run-length (j - i) without changing it for unit weights.
struct UnitWeight {
  int64_t operator()(size_t) const { return 1; }
};
struct SpanWeight {
  const int64_t* w;
  int64_t operator()(size_t i) const { return w[i]; }
};

template <typename WeightFn>
std::vector<GroupedCell> AggregateByKeyAndEstabImpl(
    std::vector<uint64_t> keys, const std::vector<int64_t>& estab_ids,
    WeightFn weight_of, uint64_t domain_size, int num_threads) {
  assert(estab_ids.size() == keys.size());
  assert(domain_size > 0);
  const size_t n = keys.size();
  if (n == 0) return {};
  const PartitionPlan plan = PlanFor(n, domain_size, num_threads);
  const size_t P = plan.num_partitions;

  // Phase 1: per-block run compression + partition histogram + estab range.
  std::vector<CompressedBlock> blocks(static_cast<size_t>(plan.threads));
  RunWorkers(plan.threads, [&](int w) {
    const size_t begin = static_cast<size_t>(w) * plan.block_size;
    const size_t end = std::min(n, begin + plan.block_size);
    CompressedBlock& block = blocks[static_cast<size_t>(w)];
    block.hist.assign(P, 0);
    size_t i = begin;
    while (i < end) {
      const uint64_t key = keys[i];
      const int64_t estab = estab_ids[i];
      int64_t weight = weight_of(i);
      size_t j = i + 1;
      while (j < end && keys[j] == key && estab_ids[j] == estab) {
        weight += weight_of(j++);
      }
      block.keys.push_back(key);
      block.estabs.push_back(estab);
      block.weights.push_back(weight);
      ++block.hist[key >> plan.shift];
      block.min_estab = std::min(block.min_estab, estab);
      block.max_estab = std::max(block.max_estab, estab);
      i = j;
    }
  });
  keys = {};
  int64_t min_estab = std::numeric_limits<int64_t>::max();
  int64_t max_estab = std::numeric_limits<int64_t>::min();
  for (const auto& block : blocks) {
    min_estab = std::min(min_estab, block.min_estab);
    max_estab = std::max(max_estab, block.max_estab);
  }
  const std::vector<size_t> starts = CursorsFromHists(&blocks, P);
  const size_t items = starts[P];

  // Non-negative establishment ids whose bits fit next to the key bits
  // pack into one radix-sortable uint64; anything else takes the 24-byte
  // comparison-sort fallback.
  const int key_bits = BitWidth(domain_size - 1);
  const int estab_bits =
      BitWidth(static_cast<uint64_t>(std::max<int64_t>(max_estab, 0)));
  const bool packable = min_estab >= 0 && key_bits + estab_bits <= 64;
  const int packed_bytes = (key_bits + estab_bits + 7) / 8;

  std::vector<std::vector<GroupedCell>> per_partition(P);
  std::atomic<size_t> next{0};

  if (packable) {
    // Phase 2: scatter weighted packed items into partition order.
    std::vector<uint64_t> vals(items);
    std::vector<int64_t> weights(items);
    // eep-lint: disjoint-writes -- CursorsFromHists hands every
    // (block, partition) pair a disjoint slice of vals/weights; worker w
    // advances only its own block's cursors.
    RunWorkers(plan.threads, [&](int w) {
      CompressedBlock& block = blocks[static_cast<size_t>(w)];
      for (size_t i = 0; i < block.keys.size(); ++i) {
        const uint64_t key = block.keys[i];
        const size_t slot = block.hist[key >> plan.shift]++;
        vals[slot] =
            (key << estab_bits) | static_cast<uint64_t>(block.estabs[i]);
        weights[slot] = block.weights[i];
      }
      block = CompressedBlock{};
    });
    // Phase 3: per-partition sort + weighted run-length aggregation.
    RunWorkers(plan.threads, [&](int) {
      std::vector<uint64_t> val_scratch;
      std::vector<int64_t> weight_scratch;
      for (size_t p = next.fetch_add(1); p < P; p = next.fetch_add(1)) {
        const size_t m = starts[p + 1] - starts[p];
        RadixSortWithWeights(vals.data() + starts[p],
                             weights.data() + starts[p], m, packed_bytes,
                             val_scratch, weight_scratch);
        RlePacked(vals.data() + starts[p], weights.data() + starts[p], m,
                  estab_bits, &per_partition[p]);
      }
    });
  } else {
    std::vector<KeyEstabWeight> scattered(items);
    // eep-lint: disjoint-writes -- same cursor argument as the packable
    // path: each (block, partition) slice of `scattered` is private.
    RunWorkers(plan.threads, [&](int w) {
      CompressedBlock& block = blocks[static_cast<size_t>(w)];
      for (size_t i = 0; i < block.keys.size(); ++i) {
        const size_t slot = block.hist[block.keys[i] >> plan.shift]++;
        scattered[slot] = {block.keys[i], block.estabs[i], block.weights[i]};
      }
      block = CompressedBlock{};
    });
    RunWorkers(plan.threads, [&](int) {
      for (size_t p = next.fetch_add(1); p < P; p = next.fetch_add(1)) {
        KeyEstabWeight* v = scattered.data() + starts[p];
        const size_t m = starts[p + 1] - starts[p];
        std::sort(v, v + m,
                  [](const KeyEstabWeight& a, const KeyEstabWeight& b) {
                    return a.key != b.key ? a.key < b.key
                                          : a.estab < b.estab;
                  });
        RleTriples(v, m, &per_partition[p]);
      }
    });
  }
  return ConcatPartitions(std::move(per_partition));
}

template <typename WeightFn>
std::vector<std::pair<uint64_t, int64_t>> AggregateByKeyImpl(
    std::vector<uint64_t> keys, WeightFn weight_of, uint64_t domain_size,
    int num_threads) {
  assert(domain_size > 0);
  const size_t n = keys.size();
  if (n == 0) return {};
  const PartitionPlan plan = PlanFor(n, domain_size, num_threads);
  const size_t P = plan.num_partitions;
  const int key_bytes = (BitWidth(domain_size - 1) + 7) / 8;

  std::vector<CompressedBlock> blocks(static_cast<size_t>(plan.threads));
  RunWorkers(plan.threads, [&](int w) {
    const size_t begin = static_cast<size_t>(w) * plan.block_size;
    const size_t end = std::min(n, begin + plan.block_size);
    CompressedBlock& block = blocks[static_cast<size_t>(w)];
    block.hist.assign(P, 0);
    size_t i = begin;
    while (i < end) {
      const uint64_t key = keys[i];
      int64_t weight = weight_of(i);
      size_t j = i + 1;
      while (j < end && keys[j] == key) weight += weight_of(j++);
      block.keys.push_back(key);
      block.weights.push_back(weight);
      ++block.hist[key >> plan.shift];
      i = j;
    }
  });
  keys = {};
  const std::vector<size_t> starts = CursorsFromHists(&blocks, P);
  const size_t items = starts[P];

  std::vector<uint64_t> vals(items);
  std::vector<int64_t> weights(items);
  // eep-lint: disjoint-writes -- CursorsFromHists slices vals/weights
  // disjointly per (block, partition); worker w owns block w's cursors.
  RunWorkers(plan.threads, [&](int w) {
    CompressedBlock& block = blocks[static_cast<size_t>(w)];
    for (size_t i = 0; i < block.keys.size(); ++i) {
      const size_t slot = block.hist[block.keys[i] >> plan.shift]++;
      vals[slot] = block.keys[i];
      weights[slot] = block.weights[i];
    }
    block = CompressedBlock{};
  });

  std::vector<std::vector<std::pair<uint64_t, int64_t>>> per_partition(P);
  std::atomic<size_t> next{0};
  RunWorkers(plan.threads, [&](int) {
    std::vector<uint64_t> val_scratch;
    std::vector<int64_t> weight_scratch;
    for (size_t p = next.fetch_add(1); p < P; p = next.fetch_add(1)) {
      uint64_t* v = vals.data() + starts[p];
      int64_t* wt = weights.data() + starts[p];
      const size_t m = starts[p + 1] - starts[p];
      RadixSortWithWeights(v, wt, m, key_bytes, val_scratch, weight_scratch);
      auto& out = per_partition[p];
      size_t i = 0;
      while (i < m) {
        const uint64_t key = v[i];
        int64_t count = wt[i];
        size_t j = i + 1;
        while (j < m && v[j] == key) count += wt[j++];
        out.emplace_back(key, count);
        i = j;
      }
    }
  });
  size_t total = 0;
  for (const auto& runs : per_partition) total += runs.size();
  std::vector<std::pair<uint64_t, int64_t>> result;
  result.reserve(total);
  for (auto& runs : per_partition) {
    result.insert(result.end(), runs.begin(), runs.end());
  }
  return result;
}

}  // namespace

std::vector<GroupedCell> AggregateByKeyAndEstab(
    std::vector<uint64_t> keys, const std::vector<int64_t>& estab_ids,
    uint64_t domain_size, int num_threads) {
  return AggregateByKeyAndEstabImpl(std::move(keys), estab_ids, UnitWeight{},
                                    domain_size, num_threads);
}

std::vector<GroupedCell> AggregateWeightedByKeyAndEstab(
    std::vector<uint64_t> keys, const std::vector<int64_t>& estab_ids,
    const std::vector<int64_t>& weights, uint64_t domain_size,
    int num_threads) {
  assert(weights.size() == keys.size());
  return AggregateByKeyAndEstabImpl(std::move(keys), estab_ids,
                                    SpanWeight{weights.data()}, domain_size,
                                    num_threads);
}

std::vector<std::pair<uint64_t, int64_t>> AggregateByKey(
    std::vector<uint64_t> keys, uint64_t domain_size, int num_threads) {
  return AggregateByKeyImpl(std::move(keys), UnitWeight{}, domain_size,
                            num_threads);
}

std::vector<std::pair<uint64_t, int64_t>> AggregateWeightedByKey(
    std::vector<uint64_t> keys, const std::vector<int64_t>& weights,
    uint64_t domain_size, int num_threads) {
  assert(weights.size() == keys.size());
  return AggregateByKeyImpl(std::move(keys), SpanWeight{weights.data()},
                            domain_size, num_threads);
}

}  // namespace eep::table
