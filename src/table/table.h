// The Table type: an immutable set of equal-length named columns, plus the
// relational operators the LODES pipeline needs (filter, select, hash join).
#ifndef EEP_TABLE_TABLE_H_
#define EEP_TABLE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/column.h"
#include "table/schema.h"

namespace eep::table {

/// \brief Immutable relational table (schema + columns of equal length).
class Table {
 public:
  /// Fails unless every column length matches and column count == field
  /// count, and column types match the schema.
  static Result<Table> Create(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  /// Column by field name, or NotFound.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Rows where mask[i] is true. mask must have num_rows() entries.
  Result<Table> Filter(const std::vector<bool>& mask) const;

  /// Keeps only the named columns, in the given order.
  Result<Table> Select(const std::vector<std::string>& names) const;

  /// Inner hash join on int64 key columns. Every right key must be unique
  /// (the joins in this codebase are fact-to-dimension: Job -> Worker,
  /// Job -> Workplace). Output columns: all left columns, then all right
  /// columns except the right key.
  static Result<Table> HashJoin(const Table& left,
                                const std::string& left_key,
                                const Table& right,
                                const std::string& right_key);

 private:
  Table(Schema schema, std::vector<Column> columns, size_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_;
};

/// \brief Row-at-a-time builder that produces a Table.
///
/// Convenient for generators and tests; columnar appends are available via
/// Table::Create for hot paths.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row. `int64s`, `doubles`, `strings`, `codes` must supply
  /// values for the schema's fields of the matching type, in field order.
  Status AppendRow(const std::vector<int64_t>& int64s,
                   const std::vector<double>& doubles,
                   const std::vector<std::string>& strings,
                   const std::vector<uint32_t>& codes);

  size_t num_rows() const { return num_rows_; }

  /// Finalizes into a Table; the builder is left empty.
  Result<Table> Finish();

 private:
  Schema schema_;
  std::vector<std::vector<int64_t>> int64_cols_;
  std::vector<std::vector<double>> double_cols_;
  std::vector<std::vector<std::string>> string_cols_;
  std::vector<std::vector<uint32_t>> code_cols_;
  // Maps field index -> (which type bucket, index within bucket).
  std::vector<std::pair<DataType, size_t>> slots_;
  size_t num_rows_ = 0;
};

}  // namespace eep::table

#endif  // EEP_TABLE_TABLE_H_
