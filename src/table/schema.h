// Schema and dictionary types for the in-memory columnar engine.
#ifndef EEP_TABLE_SCHEMA_H_
#define EEP_TABLE_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace eep::table {

/// Physical type of a column.
enum class DataType {
  kInt64,     ///< 64-bit integers (ids, counts, populations).
  kDouble,    ///< doubles (noise-infused values, weights).
  kString,    ///< raw strings (rarely used; labels only).
  kCategory,  ///< dictionary-encoded categorical values (uint32 codes).
};

/// Name of a DataType ("int64", ...).
const char* DataTypeName(DataType type);

/// \brief Immutable mapping between categorical string values and dense
/// uint32 codes. Shared between a Field and its Column.
class Dictionary {
 public:
  /// Builds a dictionary from distinct values; fails on duplicates.
  static Result<std::shared_ptr<const Dictionary>> Create(
      std::vector<std::string> values);

  size_t size() const { return values_.size(); }

  /// Code of `value`, or NotFound.
  Result<uint32_t> CodeOf(const std::string& value) const;

  /// String for `code`; OutOfRange on bad codes.
  Result<std::string> ValueOf(uint32_t code) const;

  /// Unchecked accessor for hot paths; requires code < size().
  const std::string& value(uint32_t code) const { return values_[code]; }

  const std::vector<std::string>& values() const { return values_; }

 private:
  explicit Dictionary(std::vector<std::string> values);
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// \brief A named, typed column slot in a Schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  /// Present iff type == kCategory.
  std::shared_ptr<const Dictionary> dictionary;
};

/// \brief Ordered list of fields with by-name lookup.
class Schema {
 public:
  Schema() = default;

  /// Fails on duplicate field names or a kCategory field with no dictionary.
  static Result<Schema> Create(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// A new schema with `prefix` prepended to every field name (used to
  /// disambiguate join outputs).
  Schema WithPrefix(const std::string& prefix) const;

 private:
  explicit Schema(std::vector<Field> fields);
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace eep::table

#endif  // EEP_TABLE_SCHEMA_H_
