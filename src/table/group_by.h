// GROUP BY execution over categorical columns: the engine behind the
// paper's marginal queries (Definition 2.1).
#ifndef EEP_TABLE_GROUP_BY_H_
#define EEP_TABLE_GROUP_BY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace eep::table {

/// \brief Packs tuples of category codes from a fixed set of group columns
/// into a single uint64 key (mixed-radix encoding), and back.
class GroupKeyCodec {
 public:
  /// Builds a codec for the named kCategory columns of `schema`.
  /// Fails if any column is missing, non-categorical, or if the cross
  /// product of dictionary sizes overflows uint64.
  static Result<GroupKeyCodec> Create(const Schema& schema,
                                      const std::vector<std::string>& columns);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<uint32_t>& radices() const { return radices_; }
  const std::vector<size_t>& column_indices() const { return column_indices_; }

  /// Total number of cells in the cross-product domain |dom(V)|.
  uint64_t DomainSize() const;

  /// Packs one tuple of codes (one per group column, in codec order).
  uint64_t Pack(const std::vector<uint32_t>& codes) const;

  /// Unpacks a key into per-column codes.
  std::vector<uint32_t> Unpack(uint64_t key) const;

  /// Human-readable cell label "col1=value1,col2=value2,...".
  Result<std::string> Describe(const Schema& schema, uint64_t key) const;

 private:
  GroupKeyCodec() = default;
  std::vector<std::string> columns_;
  std::vector<size_t> column_indices_;
  std::vector<uint32_t> radices_;
};

/// \brief Execution options for the group-by entry points.
struct GroupByOptions {
  /// Worker threads for key materialization, partitioning and per-partition
  /// aggregation; <= 0 means std::thread::hardware_concurrency(). The
  /// result is bit-identical for every thread count (the engine is
  /// sort-based; see partitioned_group_by.h for the determinism contract).
  int num_threads = 1;
};

/// \brief Per-establishment contribution to one group-by cell.
struct EstabContribution {
  int64_t estab_id = 0;
  int64_t count = 0;
};

/// \brief One non-empty cell of a grouped count, with the establishment
/// breakdown needed by both the SDL baseline (per-establishment fuzz
/// factors) and the smooth-sensitivity mechanisms (x_v = max contribution).
struct GroupedCell {
  uint64_t key = 0;
  int64_t count = 0;
  /// Sorted by estab_id; counts sum to `count`.
  std::vector<EstabContribution> contributions;

  /// x_v of Lemma 8.5: the largest single-establishment contribution.
  int64_t MaxEstabContribution() const;
  int64_t NumEstablishments() const {
    return static_cast<int64_t>(contributions.size());
  }
};

/// \brief Result of GroupCountByEstablishment: non-empty cells sorted by key.
struct GroupedCounts {
  GroupKeyCodec codec;
  std::vector<GroupedCell> cells;

  /// Cell lookup by key; nullptr when the cell has no contributing rows.
  const GroupedCell* Find(uint64_t key) const;
};

/// Counts rows per cell of the cross product of `group_columns`, tracking
/// per-establishment contributions via the int64 column `estab_id_column`.
/// Only non-empty cells are materialized; callers that need the full domain
/// enumerate via the codec (see lodes::MarginalQuery). Executed by the
/// parallel columnar engine in partitioned_group_by.h: columnwise key
/// packing, range partitioning by key, per-partition sort-and-run-length
/// aggregation across options.num_threads workers.
Result<GroupedCounts> GroupCountByEstablishment(
    const Table& table, const std::vector<std::string>& group_columns,
    const std::string& estab_id_column, const GroupByOptions& options = {});

/// Plain per-cell row counts without establishment tracking: (key, count)
/// pairs of the non-empty cells, sorted by key.
Result<std::vector<std::pair<uint64_t, int64_t>>> GroupCount(
    const Table& table, const GroupKeyCodec& codec,
    const GroupByOptions& options = {});

}  // namespace eep::table

#endif  // EEP_TABLE_GROUP_BY_H_
