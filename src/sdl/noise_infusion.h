// Input noise infusion — the production SDL scheme the paper compares
// against (Section 5.1, after Abowd-Stephens-Vilhuber TP-2006-02):
//
//  * Each establishment w receives one confidential, time-invariant
//    multiplicative distortion factor f_w in [1-t, 1-s] ∪ [1+s, 1+t],
//    bounded away from 1 on both sides.
//  * A marginal cell is released as sum_w f_w · h(w, c) over contributing
//    establishments.
//  * Cells whose TRUE count lies in (0, S) are replaced by a draw from a
//    posterior-predictive distribution on {1, ..., floor(S)} (S = 2.5).
//  * Exact zeros are released unmodified — the property the Sec. 5.2
//    re-identification attack exploits.
#ifndef EEP_SDL_NOISE_INFUSION_H_
#define EEP_SDL_NOISE_INFUSION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "lodes/marginal.h"
#include "sdl/small_cell.h"

namespace eep::sdl {

/// \brief Parameters of the noise-infusion scheme.
///
/// The production values of (s, t) are themselves confidential; the defaults
/// sit in the publicly documented range for QWI-style fuzz factors.
struct NoiseInfusionParams {
  /// Inner edge of the distortion band (distortions are at least this big).
  double s = 0.10;
  /// Outer edge of the distortion band.
  double t = 0.25;
  /// Small-cell limit S: true counts in (0, S) get replaced.
  double small_cell_limit = 2.5;
  /// Draw |f-1| from the QWI-style ramp (mass concentrated near s) when
  /// true; uniform on [s, t] when false (ablation knob).
  bool ramp_distribution = true;

  Status Validate() const;
};

/// \brief Assigns and stores the per-establishment distortion factors and
/// perturbs marginal queries with them.
///
/// One NoiseInfusion instance corresponds to one "production system": the
/// factors are drawn once and reused across every query, exactly as the
/// deployed SDL does (that reuse is what the shape attack exploits).
class NoiseInfusion {
 public:
  /// Draws a distortion factor for every establishment id in `estab_ids`.
  static Result<NoiseInfusion> Create(NoiseInfusionParams params,
                                      const std::vector<int64_t>& estab_ids,
                                      Rng& rng);

  const NoiseInfusionParams& params() const { return params_; }

  /// The confidential factor for one establishment (exposed for the attack
  /// demonstrations and tests; the production system would never reveal it).
  Result<double> FactorOf(int64_t estab_id) const;

  /// Releases a marginal: for each cell of `query` (in cells() order),
  /// returns the published value per the scheme above.
  Result<std::vector<double>> Release(const lodes::MarginalQuery& query,
                                      Rng& rng) const;

  /// Releases a single cell given its establishment contributions and true
  /// count (the building block of Release()).
  Result<double> ReleaseCell(
      const std::vector<table::EstabContribution>& contributions,
      int64_t true_count, Rng& rng) const;

 private:
  NoiseInfusion(NoiseInfusionParams params, SmallCellSampler sampler)
      : params_(params), small_cells_(sampler) {}

  NoiseInfusionParams params_;
  SmallCellSampler small_cells_;
  std::unordered_map<int64_t, double> factors_;
};

}  // namespace eep::sdl

#endif  // EEP_SDL_NOISE_INFUSION_H_
