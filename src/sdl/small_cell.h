// Small-cell replacement for the SDL baseline (Section 5.1): marginal cells
// whose TRUE count lies in the open interval (0, S) are replaced by a draw
// from a posterior-predictive distribution supported on {1, ..., floor(S)}.
#ifndef EEP_SDL_SMALL_CELL_H_
#define EEP_SDL_SMALL_CELL_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace eep::sdl {

/// \brief Posterior-predictive sampler on {1, ..., floor(S)}.
///
/// We model the latent cell rate with a Gamma(count + 1/2, 1) posterior
/// (Jeffreys prior over a Poisson count) and draw from the implied
/// predictive distribution truncated to {1, ..., floor(S)} — integers only,
/// never zero, as the production system requires. With the paper's S = 2.5
/// the support is {1, 2}.
class SmallCellSampler {
 public:
  /// Fails unless limit > 1 (the support would otherwise be empty).
  static Result<SmallCellSampler> Create(double limit);

  double limit() const { return limit_; }
  int64_t max_value() const { return max_value_; }

  /// True iff a cell with this true count must be replaced.
  bool NeedsReplacement(int64_t true_count) const;

  /// Probability that the replacement equals k (1 <= k <= max_value()),
  /// given the true count.
  Result<double> ReplacementProbability(int64_t true_count, int64_t k) const;

  /// One replacement draw for a cell with the given true count.
  /// Requires NeedsReplacement(true_count).
  Result<int64_t> Sample(int64_t true_count, Rng& rng) const;

 private:
  explicit SmallCellSampler(double limit);
  double limit_;
  int64_t max_value_;
};

}  // namespace eep::sdl

#endif  // EEP_SDL_SMALL_CELL_H_
