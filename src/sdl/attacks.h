// Executable versions of the three inference attacks on input noise
// infusion described in Section 5.2 of the paper. Each attack assumes a
// marginal in which one workplace-attribute combination matches exactly one
// establishment, so every published worker-attribute cell for that
// combination is f_w times the establishment's true cell count (when above
// the small-cell limit).
//
// These functions exist to demonstrate — in tests and in the
// sdl_attack_demo example — that the legacy SDL fails the paper's three
// privacy requirements (Table 1), while the formally private mechanisms
// resist the same attacks.
#ifndef EEP_SDL_ATTACKS_H_
#define EEP_SDL_ATTACKS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace eep::sdl {

/// \brief Result of the establishment-shape attack.
struct ShapeAttackResult {
  /// Inferred workforce composition: published counts normalized to sum 1.
  /// Equals the true shape exactly when every cell clears the small-cell
  /// limit, because the common factor f_w cancels in the normalization.
  std::vector<double> inferred_shape;
  /// True iff every positive published count cleared the small-cell limit,
  /// i.e. the inference is exact.
  bool exact = false;
};

/// Attack 1 (violates Def. 4.3): infer the exact shape of a single
/// establishment's workforce from its published worker-attribute cells.
/// `published` holds the released counts for all worker-attribute cells of
/// the single-establishment workplace combination.
Result<ShapeAttackResult> InferEstablishmentShape(
    const std::vector<double>& published, double small_cell_limit);

/// \brief Result of the establishment-size attack.
struct SizeAttackResult {
  /// Reconstructed confidential distortion factor f_w.
  double inferred_factor = 0.0;
  /// Reconstructed true counts for every published cell.
  std::vector<double> reconstructed_counts;
  /// Reconstructed total employment of the establishment.
  double reconstructed_total = 0.0;
};

/// Attack 2 (violates Def. 4.2): an attacker who knows ONE true cell count
/// (e.g. "100 male employees aged 20-25") reconstructs f_w from the
/// published value of that cell, then inverts every other cell and the
/// establishment's total size. Requires the known cell to clear the
/// small-cell limit; cells below the limit are reconstructed as their
/// published (replaced) values and flagged by being left as-is.
Result<SizeAttackResult> ReconstructEstablishmentSize(
    const std::vector<double>& published, size_t known_cell_index,
    int64_t known_true_count, double small_cell_limit);

/// \brief Result of the worker re-identification attack.
struct ReidentificationResult {
  /// True iff exactly one cell with the known property has a positive
  /// published count — the attacker then knows the victim's remaining
  /// attributes with certainty.
  bool unique_match = false;
  /// Index of that cell when unique_match is true.
  size_t matched_cell = 0;
};

/// Attack 3 (violates Def. 4.1): the attacker knows a single employee at
/// the establishment has a property (e.g. a college degree) that is unique
/// within that workforce. Because the SDL preserves zeros exactly, the only
/// positive published cell among `cell_has_property` reveals the victim's
/// other attributes. `published[i]` are released counts,
/// `cell_has_property[i]` marks the cells consistent with the attacker's
/// background knowledge.
Result<ReidentificationResult> ReidentifyWorker(
    const std::vector<double>& published,
    const std::vector<bool>& cell_has_property);

}  // namespace eep::sdl

#endif  // EEP_SDL_ATTACKS_H_
