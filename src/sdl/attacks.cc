#include "sdl/attacks.h"

#include <cmath>

namespace eep::sdl {

Result<ShapeAttackResult> InferEstablishmentShape(
    const std::vector<double>& published, double small_cell_limit) {
  if (published.empty()) {
    return Status::InvalidArgument("no published cells");
  }
  double total = 0.0;
  bool exact = true;
  for (double v : published) {
    if (v < 0.0) return Status::InvalidArgument("negative published count");
    // A positive count at or below the small-cell limit was replaced by a
    // posterior-predictive draw, so the common-factor cancellation breaks.
    if (v > 0.0 && v <= small_cell_limit) exact = false;
    total += v;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("all published cells are zero");
  }
  ShapeAttackResult result;
  result.inferred_shape.reserve(published.size());
  for (double v : published) result.inferred_shape.push_back(v / total);
  result.exact = exact;
  return result;
}

Result<SizeAttackResult> ReconstructEstablishmentSize(
    const std::vector<double>& published, size_t known_cell_index,
    int64_t known_true_count, double small_cell_limit) {
  if (known_cell_index >= published.size()) {
    return Status::OutOfRange("known cell index out of range");
  }
  if (known_true_count <= 0) {
    return Status::InvalidArgument("known true count must be positive");
  }
  const double known_published = published[known_cell_index];
  if (known_published <= small_cell_limit) {
    return Status::FailedPrecondition(
        "known cell is below the small-cell limit; factor not recoverable");
  }
  SizeAttackResult result;
  result.inferred_factor =
      known_published / static_cast<double>(known_true_count);
  result.reconstructed_counts.reserve(published.size());
  for (double v : published) {
    if (v > small_cell_limit) {
      // Invert the shared multiplicative factor and round to the integer
      // count the establishment actually reported.
      result.reconstructed_counts.push_back(
          std::round(v / result.inferred_factor));
    } else {
      // Small or zero cells carry no factor information; keep as published.
      result.reconstructed_counts.push_back(v);
    }
    result.reconstructed_total += result.reconstructed_counts.back();
  }
  return result;
}

Result<ReidentificationResult> ReidentifyWorker(
    const std::vector<double>& published,
    const std::vector<bool>& cell_has_property) {
  if (published.size() != cell_has_property.size()) {
    return Status::InvalidArgument("length mismatch");
  }
  ReidentificationResult result;
  size_t matches = 0;
  for (size_t i = 0; i < published.size(); ++i) {
    if (cell_has_property[i] && published[i] > 0.0) {
      ++matches;
      result.matched_cell = i;
    }
  }
  result.unique_match = (matches == 1);
  return result;
}

}  // namespace eep::sdl
