#include "sdl/noise_infusion.h"

#include "common/distributions.h"

namespace eep::sdl {

Status NoiseInfusionParams::Validate() const {
  if (!(0.0 < s && s < t && t < 1.0)) {
    return Status::InvalidArgument("noise infusion requires 0 < s < t < 1");
  }
  if (!(small_cell_limit > 1.0)) {
    return Status::InvalidArgument("small_cell_limit must be > 1");
  }
  return Status::OK();
}

Result<NoiseInfusion> NoiseInfusion::Create(
    NoiseInfusionParams params, const std::vector<int64_t>& estab_ids,
    Rng& rng) {
  EEP_RETURN_NOT_OK(params.Validate());
  EEP_ASSIGN_OR_RETURN(SmallCellSampler sampler,
                       SmallCellSampler::Create(params.small_cell_limit));
  NoiseInfusion infusion(params, sampler);

  EEP_ASSIGN_OR_RETURN(RampDistribution ramp,
                       RampDistribution::Create(params.s, params.t));
  infusion.factors_.reserve(estab_ids.size());
  for (int64_t id : estab_ids) {
    const double magnitude = params.ramp_distribution
                                 ? ramp.Sample(rng)
                                 : rng.Uniform(params.s, params.t);
    const double f = rng.Bernoulli(0.5) ? 1.0 + magnitude : 1.0 - magnitude;
    auto [it, inserted] = infusion.factors_.emplace(id, f);
    if (!inserted) {
      return Status::InvalidArgument("duplicate establishment id " +
                                     std::to_string(id));
    }
  }
  return infusion;
}

Result<double> NoiseInfusion::FactorOf(int64_t estab_id) const {
  auto it = factors_.find(estab_id);
  if (it == factors_.end()) {
    return Status::NotFound("no distortion factor for establishment " +
                            std::to_string(estab_id));
  }
  return it->second;
}

Result<double> NoiseInfusion::ReleaseCell(
    const std::vector<table::EstabContribution>& contributions,
    int64_t true_count, Rng& rng) const {
  // Exact zeros pass through (Section 5.1: "Zero counts are left
  // unmodified").
  if (true_count == 0) return 0.0;
  // Small cells: the published value is a posterior-predictive draw, not
  // the noise-infused sum.
  if (small_cells_.NeedsReplacement(true_count)) {
    EEP_ASSIGN_OR_RETURN(int64_t replacement,
                         small_cells_.Sample(true_count, rng));
    return static_cast<double>(replacement);
  }
  double released = 0.0;
  for (const auto& contrib : contributions) {
    EEP_ASSIGN_OR_RETURN(double f, FactorOf(contrib.estab_id));
    released += f * static_cast<double>(contrib.count);
  }
  return released;
}

Result<std::vector<double>> NoiseInfusion::Release(
    const lodes::MarginalQuery& query, Rng& rng) const {
  static const std::vector<table::EstabContribution> kNoContribs;
  std::vector<double> out;
  out.reserve(query.cells().size());
  for (const auto& cell : query.cells()) {
    const table::GroupedCell* grouped = query.grouped().Find(cell.key);
    const auto& contribs = grouped ? grouped->contributions : kNoContribs;
    EEP_ASSIGN_OR_RETURN(double v, ReleaseCell(contribs, cell.count, rng));
    out.push_back(v);
  }
  return out;
}

}  // namespace eep::sdl
