#include "sdl/small_cell.h"

#include <cmath>
#include <vector>

namespace eep::sdl {

namespace {
// std::lgamma writes the process-global `signgam` (POSIX), a data race
// when trial workers evaluate replacement probabilities concurrently.
// Arguments here are strictly positive (k + c + 1/2 >= 3/2), so the sign
// is always +1 and the reentrant form loses nothing.
double LogGamma(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}
}  // namespace

SmallCellSampler::SmallCellSampler(double limit)
    : limit_(limit), max_value_(static_cast<int64_t>(std::floor(limit))) {}

Result<SmallCellSampler> SmallCellSampler::Create(double limit) {
  if (!(limit > 1.0)) {
    return Status::InvalidArgument("small-cell limit must be > 1");
  }
  return SmallCellSampler(limit);
}

bool SmallCellSampler::NeedsReplacement(int64_t true_count) const {
  return true_count > 0 && static_cast<double>(true_count) < limit_;
}

Result<double> SmallCellSampler::ReplacementProbability(int64_t true_count,
                                                        int64_t k) const {
  if (k < 1 || k > max_value_) {
    return Status::OutOfRange("replacement value outside support");
  }
  if (!NeedsReplacement(true_count)) {
    return Status::InvalidArgument("cell does not need replacement");
  }
  // Negative-binomial predictive from a Gamma(c + 1/2, 1) posterior over the
  // Poisson rate: Pr[k] ∝ Gamma(k + c + 1/2) / (k! * 2^k), truncated to the
  // support. Computed in log space for stability.
  const double a = static_cast<double>(true_count) + 0.5;
  auto log_weight = [a](int64_t kk) {
    return LogGamma(static_cast<double>(kk) + a) -
           LogGamma(static_cast<double>(kk) + 1.0) -
           static_cast<double>(kk) * std::log(2.0);
  };
  double total = 0.0;
  const double ref = log_weight(1);
  for (int64_t kk = 1; kk <= max_value_; ++kk) {
    total += std::exp(log_weight(kk) - ref);
  }
  return std::exp(log_weight(k) - ref) / total;
}

Result<int64_t> SmallCellSampler::Sample(int64_t true_count, Rng& rng) const {
  if (!NeedsReplacement(true_count)) {
    return Status::InvalidArgument("cell does not need replacement");
  }
  std::vector<double> probs;
  probs.reserve(static_cast<size_t>(max_value_));
  for (int64_t k = 1; k <= max_value_; ++k) {
    EEP_ASSIGN_OR_RETURN(double p, ReplacementProbability(true_count, k));
    probs.push_back(p);
  }
  return static_cast<int64_t>(rng.Categorical(probs)) + 1;
}

}  // namespace eep::sdl
