#include "sdl/suppression.h"

namespace eep::sdl {

Status SuppressionParams::Validate() const {
  if (min_establishments < 1) {
    return Status::InvalidArgument("min_establishments must be >= 1");
  }
  if (!(dominance_share > 0.0 && dominance_share <= 1.0)) {
    return Status::InvalidArgument("dominance_share must be in (0, 1]");
  }
  return Status::OK();
}

double SuppressionResult::SuppressedCellShare() const {
  if (total_cells == 0) return 0.0;
  return static_cast<double>(suppressed_cells) /
         static_cast<double>(total_cells);
}

double SuppressionResult::SuppressedEmploymentShare() const {
  if (total_employment == 0) return 0.0;
  return static_cast<double>(suppressed_employment) /
         static_cast<double>(total_employment);
}

Result<SuppressionResult> SuppressMarginal(const lodes::MarginalQuery& query,
                                           const SuppressionParams& params) {
  EEP_RETURN_NOT_OK(params.Validate());
  SuppressionResult result;
  result.cells.reserve(query.cells().size());
  for (const auto& cell : query.cells()) {
    result.total_cells += 1;
    result.total_employment += cell.count;
    SuppressedCell released;
    if (cell.count == 0) {
      // Nothing to protect: publish the structural zero.
      released.value = 0;
    } else {
      const bool too_few = cell.num_estabs < params.min_establishments;
      const bool dominated =
          static_cast<double>(cell.x_v) >
          params.dominance_share * static_cast<double>(cell.count);
      if (too_few || dominated) {
        ++result.suppressed_cells;
        result.suppressed_employment += cell.count;
      } else {
        released.value = cell.count;
      }
    }
    result.cells.push_back(released);
  }
  return result;
}

}  // namespace eep::sdl
