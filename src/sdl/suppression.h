// Primary cell suppression — the pre-noise-infusion SDL standard the
// paper's Appendix A traces back to Fellegi (1972): instead of perturbing,
// the agency withholds any cell that could identify a respondent. Two
// classical primary-suppression rules are implemented:
//
//  * threshold rule: suppress cells with fewer than `min_establishments`
//    contributing establishments;
//  * p%-dominance rule: suppress cells where the largest establishment
//    contributes more than `dominance_share` of the count (its value could
//    be estimated too precisely by the runner-up).
//
// Complementary suppression (protecting primaries from subtraction attacks
// via published totals) is out of scope because this library releases
// single marginals without additive totals; the module exists to quantify
// the DATA LOSS of suppression, the cost that motivated noise infusion and
// that the paper's formally private mechanisms avoid entirely.
#ifndef EEP_SDL_SUPPRESSION_H_
#define EEP_SDL_SUPPRESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "lodes/marginal.h"

namespace eep::sdl {

/// \brief Primary-suppression parameters.
struct SuppressionParams {
  /// Cells with fewer contributing establishments are suppressed.
  int64_t min_establishments = 3;
  /// Cells where the top establishment exceeds this share are suppressed.
  double dominance_share = 0.8;

  Status Validate() const;
};

/// \brief One released cell: either the exact count or suppressed.
struct SuppressedCell {
  /// Exact count when published; nullopt when suppressed.
  std::optional<int64_t> value;
  bool suppressed() const { return !value.has_value(); }
};

/// \brief Outcome of suppressing a marginal.
struct SuppressionResult {
  std::vector<SuppressedCell> cells;  ///< In query.cells() order.
  int64_t suppressed_cells = 0;
  int64_t suppressed_employment = 0;  ///< Jobs hidden inside suppressed cells.
  int64_t total_cells = 0;
  int64_t total_employment = 0;

  double SuppressedCellShare() const;
  double SuppressedEmploymentShare() const;
};

/// Applies primary suppression to a computed marginal. Zero cells are
/// published as zeros (no establishments to protect). Deterministic — the
/// classical scheme adds no noise, which is precisely why the exact values
/// it DOES publish are disclosive under subtraction attacks.
Result<SuppressionResult> SuppressMarginal(const lodes::MarginalQuery& query,
                                           const SuppressionParams& params);

}  // namespace eep::sdl

#endif  // EEP_SDL_SUPPRESSION_H_
