// The paper's evaluation workloads (Section 10), one function per figure:
//
//   Workload 1 / Figure 1: L1 error ratio on the establishment marginal
//     (place x industry x ownership), strong (alpha,eps)-ER-EE privacy.
//   Ranking 1 / Figure 2:  Spearman correlation of cells of that marginal
//     ranked by total count.
//   Workload 2 / Figure 3: L1 error ratio for a single (sex x education)
//     query on the workplace marginal, weak privacy, per-cell budget eps.
//   Workload 3 / Figure 4: L1 error ratio for the full workplace x sex x
//     education marginal, weak privacy; the budget is split across the
//     d = |dom(sex) x dom(education)| = 8 worker cells (per-cell eps/d).
//   Ranking 2 / Figure 5:  Spearman correlation of establishment cells
//     ranked by "females with a college degree".
//   Finding 6: the Truncated Laplace node-DP baseline on Workload 1 and
//     Ranking 1 across truncation thresholds theta.
#ifndef EEP_EVAL_WORKLOADS_H_
#define EEP_EVAL_WORKLOADS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "lodes/dataset.h"
#include "lodes/marginal.h"
#include "mechanisms/mechanism.h"

namespace eep::eval {

/// Formally private mechanisms compared in the figures.
enum class MechanismKind {
  kLogLaplace,
  kSmoothLaplace,
  kSmoothGamma,
  kEdgeLaplace,       ///< Section 6 edge-DP baseline (not plotted by paper).
  kSmoothGeometric,   ///< Integer extension (ablation).
};

const char* MechanismKindName(MechanismKind kind);

/// CLI-friendly inverse of MechanismKindName: log_laplace | smooth_laplace
/// | smooth_gamma | edge_laplace | geometric. The single mapping shared by
/// bench and example flag parsers.
Result<MechanismKind> MechanismKindByName(const std::string& name);

/// Builds a mechanism instance for one grid point; fails when the
/// (alpha, epsilon, delta) combination is infeasible for that mechanism —
/// those are the missing points in the paper's plots.
Result<std::unique_ptr<mechanisms::CountMechanism>> MakeMechanism(
    MechanismKind kind, double alpha, double epsilon, double delta);

/// \brief One plotted point of a figure.
struct FigurePoint {
  MechanismKind kind = MechanismKind::kLogLaplace;
  double epsilon = 0.0;  ///< Total privacy-loss budget (figure x-axis).
  double alpha = 0.0;
  bool feasible = false;
  std::string infeasible_reason;
  /// Error ratio (Figures 1/3/4) or Spearman correlation (Figures 2/5).
  double overall = 0.0;
  std::array<double, kNumStrata> by_stratum{};
};

/// \brief Parameter grids shared by the figure workloads.
struct WorkloadGrids {
  std::vector<double> epsilons = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<double> alphas = {0.01, 0.05, 0.1, 0.15, 0.2};
  /// Failure probability for Smooth Laplace / Smooth Geometric (the
  /// paper's figures use 0.05).
  double delta = 0.05;
  std::vector<MechanismKind> kinds = {MechanismKind::kLogLaplace,
                                      MechanismKind::kSmoothLaplace,
                                      MechanismKind::kSmoothGamma};
};

/// \brief Computes the figure series for one dataset.
class Workloads {
 public:
  Workloads(const lodes::LodesDataset* data, ExperimentConfig config)
      : data_(data), threads_(config.threads), runner_(data, config) {}

  /// Figures 1-5 (see file header). Points are emitted for the full grid;
  /// infeasible combinations carry feasible=false and a reason.
  Result<std::vector<FigurePoint>> Figure1(const WorkloadGrids& grids);
  Result<std::vector<FigurePoint>> Figure2(const WorkloadGrids& grids);
  Result<std::vector<FigurePoint>> Figure3(const WorkloadGrids& grids);
  Result<std::vector<FigurePoint>> Figure4(const WorkloadGrids& grids);
  Result<std::vector<FigurePoint>> Figure5(const WorkloadGrids& grids);

  /// \brief One Finding-6 point: Truncated Laplace at (theta, epsilon).
  struct TruncatedPoint {
    int64_t theta = 0;
    double epsilon = 0.0;
    double error_ratio = 0.0;
    double spearman = 0.0;
    int64_t removed_estabs = 0;
    int64_t removed_jobs = 0;
  };
  Result<std::vector<TruncatedPoint>> Finding6(
      const std::vector<int64_t>& thetas, const std::vector<double>& epsilons);

  /// The worker-cell index of the (female, BA+) slice used by Workload 2
  /// and Ranking 2.
  static int64_t FemaleCollegeSlice();

  /// Access to the underlying runner (for custom experiments).
  ExperimentRunner& runner() { return runner_; }

 private:
  /// Lazily computed marginals (shared across grid points). Both figure
  /// marginals are materialized together through the fused workload path
  /// (lodes::ComputeWorkload): one WorkerFull scan at the finer
  /// cross-classification, the establishment marginal derived from it by
  /// cube roll-up — bit-identical to computing each independently.
  Result<const lodes::MarginalQuery*> EstabMarginal();
  Result<const lodes::MarginalQuery*> SexEduMarginal();
  Status EnsureMarginals();

  /// Error-ratio grid sweep over (kind, epsilon, alpha) with per-cell
  /// budget epsilon/budget_divisor, optionally restricted to one worker
  /// slice.
  Result<std::vector<FigurePoint>> RatioSweep(
      const lodes::MarginalQuery& query, const WorkloadGrids& grids,
      double budget_divisor, std::optional<int64_t> worker_slice);

  /// Ranking sweep (Spearman vs SDL), same parameterization.
  Result<std::vector<FigurePoint>> RankingSweep(
      const lodes::MarginalQuery& query, const WorkloadGrids& grids,
      double budget_divisor, std::optional<int64_t> worker_slice);

  const lodes::LodesDataset* data_;
  int threads_ = 1;
  ExperimentRunner runner_;
  std::optional<lodes::MarginalQuery> estab_marginal_;
  std::optional<lodes::MarginalQuery> sexedu_marginal_;
};

}  // namespace eep::eval

#endif  // EEP_EVAL_WORKLOADS_H_
