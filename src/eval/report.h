// Machine-readable experiment output: figure sweeps and truncation sweeps
// serialized to CSV so results can be plotted or regression-compared
// outside the bench binaries (all benches accept --csv=PATH).
#ifndef EEP_EVAL_REPORT_H_
#define EEP_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/workloads.h"

namespace eep::eval {

/// Writes one row per (mechanism, epsilon, alpha) point with overall and
/// per-stratum values. Infeasible points carry empty value fields and the
/// reason. Columns: mechanism, epsilon, alpha, feasible, overall,
/// stratum0..stratum3, infeasible_reason.
Status WriteFigurePointsCsv(const std::vector<FigurePoint>& points,
                            const std::string& path);

/// Parses a CSV previously written by WriteFigurePointsCsv (used by tests
/// and by downstream tooling that diffs runs).
Result<std::vector<FigurePoint>> ReadFigurePointsCsv(const std::string& path);

/// Writes one row per Finding-6 point. Columns: theta, epsilon,
/// removed_estabs, removed_jobs, error_ratio, spearman.
Status WriteTruncatedPointsCsv(
    const std::vector<Workloads::TruncatedPoint>& points,
    const std::string& path);

}  // namespace eep::eval

#endif  // EEP_EVAL_REPORT_H_
