#include "eval/strata.h"

namespace eep::eval {

int StratumOf(int64_t population) {
  if (population < 100) return 0;
  if (population < 10000) return 1;
  if (population < 100000) return 2;
  return 3;
}

const std::string& StratumName(int stratum) {
  static const std::array<std::string, kNumStrata> kNames = {
      "0<=pop<100", "100<=pop<10k", "10k<=pop<100k", "pop>=100k"};
  static const std::string kUnknown = "unknown";
  if (stratum < 0 || stratum >= kNumStrata) return kUnknown;
  return kNames[stratum];
}

void StratumTotals::Add(int stratum, double value) {
  if (stratum >= 0 && stratum < kNumStrata) {
    values[stratum] += value;
    ++counts[stratum];
  }
  overall += value;
  ++overall_count;
}

}  // namespace eep::eval
