#include "eval/report.h"

#include <cstdio>
#include <cstdlib>

#include "common/csv.h"

namespace eep::eval {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

Result<MechanismKind> KindFromName(const std::string& name) {
  for (MechanismKind kind :
       {MechanismKind::kLogLaplace, MechanismKind::kSmoothLaplace,
        MechanismKind::kSmoothGamma, MechanismKind::kEdgeLaplace,
        MechanismKind::kSmoothGeometric}) {
    if (name == MechanismKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown mechanism name: " + name);
}

}  // namespace

Status WriteFigurePointsCsv(const std::vector<FigurePoint>& points,
                            const std::string& path) {
  std::vector<std::string> header = {"mechanism", "epsilon", "alpha",
                                     "feasible", "overall"};
  for (int s = 0; s < kNumStrata; ++s) {
    header.push_back("stratum" + std::to_string(s));
  }
  header.push_back("infeasible_reason");

  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    std::vector<std::string> row = {MechanismKindName(p.kind),
                                    Num(p.epsilon), Num(p.alpha),
                                    p.feasible ? "1" : "0"};
    if (p.feasible) {
      row.push_back(Num(p.overall));
      for (int s = 0; s < kNumStrata; ++s) {
        row.push_back(Num(p.by_stratum[s]));
      }
      row.emplace_back();
    } else {
      row.insert(row.end(), 1 + kNumStrata, "");
      row.push_back(p.infeasible_reason);
    }
    rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, header, rows);
}

Result<std::vector<FigurePoint>> ReadFigurePointsCsv(
    const std::string& path) {
  EEP_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  const size_t expected_fields = 6 + kNumStrata;
  if (doc.header.size() != expected_fields) {
    return Status::InvalidArgument("unexpected column count in " + path);
  }
  std::vector<FigurePoint> points;
  points.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    if (row.size() != expected_fields) {
      return Status::InvalidArgument("ragged row in " + path);
    }
    FigurePoint p;
    EEP_ASSIGN_OR_RETURN(p.kind, KindFromName(row[0]));
    p.epsilon = std::strtod(row[1].c_str(), nullptr);
    p.alpha = std::strtod(row[2].c_str(), nullptr);
    p.feasible = row[3] == "1";
    if (p.feasible) {
      p.overall = std::strtod(row[4].c_str(), nullptr);
      for (int s = 0; s < kNumStrata; ++s) {
        p.by_stratum[s] = std::strtod(row[5 + s].c_str(), nullptr);
      }
    } else {
      p.infeasible_reason = row.back();
    }
    points.push_back(std::move(p));
  }
  return points;
}

Status WriteTruncatedPointsCsv(
    const std::vector<Workloads::TruncatedPoint>& points,
    const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    rows.push_back({std::to_string(p.theta), Num(p.epsilon),
                    std::to_string(p.removed_estabs),
                    std::to_string(p.removed_jobs), Num(p.error_ratio),
                    Num(p.spearman)});
  }
  return WriteCsvFile(path,
                      {"theta", "epsilon", "removed_estabs", "removed_jobs",
                       "error_ratio", "spearman"},
                      rows);
}

}  // namespace eep::eval
