// Census-place population strata used by every stratified panel in the
// paper's figures: 0-100, 100-10k, 10k-100k, 100k+.
#ifndef EEP_EVAL_STRATA_H_
#define EEP_EVAL_STRATA_H_

#include <array>
#include <cstdint>
#include <string>

namespace eep::eval {

/// Number of population strata.
inline constexpr int kNumStrata = 4;

/// Stratum index for a place population:
/// 0: pop < 100, 1: 100 <= pop < 10k, 2: 10k <= pop < 100k, 3: pop >= 100k.
int StratumOf(int64_t population);

/// Display name of a stratum ("0 <= pop < 100", ...).
const std::string& StratumName(int stratum);

/// \brief A per-stratum accumulator of (numerator, denominator) pairs used
/// for stratified error ratios.
struct StratumTotals {
  std::array<double, kNumStrata> values{};
  std::array<int64_t, kNumStrata> counts{};
  double overall = 0.0;
  int64_t overall_count = 0;

  void Add(int stratum, double value);
};

}  // namespace eep::eval

#endif  // EEP_EVAL_STRATA_H_
