#include "eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/stats.h"

namespace eep::eval {

ExperimentRunner::FilteredCells ExperimentRunner::ApplyFilter(
    const lodes::MarginalQuery& query, const CellFilter& filter) const {
  FilteredCells out;
  const auto& cells = query.cells();
  out.indices.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    if (filter && !filter(cells[i])) continue;
    out.indices.push_back(i);
    out.strata.push_back(StratumOf(query.PlacePopulation(cells[i])));
  }
  return out;
}

Result<std::vector<double>> ExperimentRunner::ReleaseWithSdl(
    const lodes::MarginalQuery& query, const FilteredCells& cells,
    Rng& rng) const {
  // Fresh confidential distortion factors per trial: one draw of the
  // production system.
  EEP_ASSIGN_OR_RETURN(const table::Column* id_col,
                       data_->workplaces().ColumnByName(lodes::kColEstabId));
  EEP_ASSIGN_OR_RETURN(const std::vector<int64_t>* estab_ids,
                       id_col->AsInt64());
  EEP_ASSIGN_OR_RETURN(
      sdl::NoiseInfusion infusion,
      sdl::NoiseInfusion::Create(config_.sdl_params, *estab_ids, rng));

  static const std::vector<table::EstabContribution> kNoContribs;
  std::vector<double> out;
  out.reserve(cells.indices.size());
  for (size_t idx : cells.indices) {
    const auto& cell = query.cells()[idx];
    const table::GroupedCell* grouped = query.grouped().Find(cell.key);
    const auto& contribs = grouped ? grouped->contributions : kNoContribs;
    EEP_ASSIGN_OR_RETURN(double v,
                         infusion.ReleaseCell(contribs, cell.count, rng));
    out.push_back(v);
  }
  return out;
}

Result<std::vector<double>> ExperimentRunner::ReleaseWithMechanism(
    const lodes::MarginalQuery& query,
    const mechanisms::CountMechanism& mechanism, const FilteredCells& cells,
    Rng& rng) const {
  static const std::vector<table::EstabContribution> kNoContribs;
  std::vector<double> out;
  out.reserve(cells.indices.size());
  for (size_t idx : cells.indices) {
    const auto& cell = query.cells()[idx];
    mechanisms::CellQuery cq;
    cq.true_count = cell.count;
    cq.x_v = cell.x_v;
    const table::GroupedCell* grouped = query.grouped().Find(cell.key);
    cq.contributions = grouped ? &grouped->contributions : &kNoContribs;
    // eep-lint: measurement-harness -- accuracy experiments sweep budgets
    // as the independent variable; there is no ledger to charge by design
    EEP_ASSIGN_OR_RETURN(double v, mechanism.Release(cq, rng));
    out.push_back(v);
  }
  return out;
}

namespace {

// Accumulates |released - true| into stratified totals for one trial.
void AccumulateErrors(const lodes::MarginalQuery& query,
                      const std::vector<size_t>& indices,
                      const std::vector<int>& strata,
                      const std::vector<double>& released,
                      StratifiedError* totals) {
  for (size_t i = 0; i < indices.size(); ++i) {
    const double truth =
        static_cast<double>(query.cells()[indices[i]].count);
    const double err = std::abs(released[i] - truth);
    totals->overall += err;
    totals->by_stratum[strata[i]] += err;
  }
}

}  // namespace

Result<StratifiedError> ExperimentRunner::RunErrorTrials(
    const lodes::MarginalQuery& query, const FilteredCells& cells,
    uint64_t seed_salt, const TrialReleaseFn& release) const {
  Rng rng(config_.seed ^ seed_salt);
  StratifiedError totals;
  totals.total_cells = static_cast<int64_t>(cells.indices.size());
  for (size_t i = 0; i < cells.indices.size(); ++i) {
    ++totals.cells_by_stratum[cells.strata[i]];
  }

  // Fork all trial streams up front (sequentially, for determinism) and
  // run trials on worker threads. Each trial writes its own partial, so
  // the merge order — and therefore every float — matches the serial run.
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(config_.trials);
  for (int t = 0; t < config_.trials; ++t) trial_rngs.push_back(rng.Fork(t));

  std::vector<StratifiedError> partials(config_.trials);
  std::vector<Status> statuses(config_.trials);
  auto run_trial = [&](int t) {
    auto released = release(query, cells, trial_rngs[t]);
    if (!released.ok()) {
      statuses[t] = released.status();
      return;
    }
    AccumulateErrors(query, cells.indices, cells.strata, released.value(),
                     &partials[t]);
  };

  const int threads =
      std::clamp(config_.threads, 1, std::max(1, config_.trials));
  if (threads <= 1) {
    for (int t = 0; t < config_.trials; ++t) run_trial(t);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w]() {
        for (int t = w; t < config_.trials; t += threads) run_trial(t);
      });
    }
    for (auto& worker : pool) worker.join();
  }

  for (int t = 0; t < config_.trials; ++t) {
    EEP_RETURN_NOT_OK(statuses[t]);
    totals.overall += partials[t].overall;
    for (int s = 0; s < kNumStrata; ++s) {
      totals.by_stratum[s] += partials[t].by_stratum[s];
    }
  }
  const double inv_trials = 1.0 / config_.trials;
  totals.overall *= inv_trials;
  for (auto& v : totals.by_stratum) v *= inv_trials;
  return totals;
}

Result<StratifiedError> ExperimentRunner::SdlError(
    const lodes::MarginalQuery& query, const CellFilter& filter) {
  const FilteredCells cells = ApplyFilter(query, filter);
  return RunErrorTrials(
      query, cells, 0x5D1Au,
      [this](const lodes::MarginalQuery& q, const FilteredCells& c,
             Rng& rng) { return ReleaseWithSdl(q, c, rng); });
}

Result<StratifiedError> ExperimentRunner::MechanismError(
    const lodes::MarginalQuery& query,
    const mechanisms::CountMechanism& mechanism, const CellFilter& filter) {
  const FilteredCells cells = ApplyFilter(query, filter);
  return RunErrorTrials(
      query, cells, 0x3EC4u,
      [this, &mechanism](const lodes::MarginalQuery& q,
                         const FilteredCells& c, Rng& rng) {
        return ReleaseWithMechanism(q, mechanism, c, rng);
      });
}

Result<ErrorRatioResult> ExperimentRunner::ErrorRatio(
    const lodes::MarginalQuery& query,
    const mechanisms::CountMechanism& mechanism, const CellFilter& filter) {
  ErrorRatioResult result;
  EEP_ASSIGN_OR_RETURN(result.mechanism,
                       MechanismError(query, mechanism, filter));
  EEP_ASSIGN_OR_RETURN(result.baseline, SdlError(query, filter));
  if (result.baseline.overall <= 0.0) {
    return Status::FailedPrecondition(
        "SDL baseline error is zero; ratio undefined");
  }
  result.overall_ratio = result.mechanism.overall / result.baseline.overall;
  for (int s = 0; s < kNumStrata; ++s) {
    result.stratum_ratio[s] =
        result.baseline.by_stratum[s] > 0.0
            ? result.mechanism.by_stratum[s] / result.baseline.by_stratum[s]
            : 0.0;
  }
  return result;
}

Result<StratifiedCorrelation> ExperimentRunner::RankingCorrelation(
    const lodes::MarginalQuery& query,
    const mechanisms::CountMechanism& mechanism, const CellFilter& filter) {
  const FilteredCells cells = ApplyFilter(query, filter);
  if (cells.indices.size() < 2) {
    return Status::InvalidArgument("ranking needs >= 2 cells");
  }
  Rng sdl_rng(config_.seed ^ 0x5D1Au);
  Rng mech_rng(config_.seed ^ 0x3EC4u);
  RunningStats overall;
  std::array<RunningStats, kNumStrata> per_stratum;
  for (int t = 0; t < config_.trials; ++t) {
    Rng sdl_trial = sdl_rng.Fork(t);
    Rng mech_trial = mech_rng.Fork(t);
    EEP_ASSIGN_OR_RETURN(std::vector<double> sdl_release,
                         ReleaseWithSdl(query, cells, sdl_trial));
    EEP_ASSIGN_OR_RETURN(
        std::vector<double> mech_release,
        ReleaseWithMechanism(query, mechanism, cells, mech_trial));
    auto corr = SpearmanCorrelation(mech_release, sdl_release);
    if (corr.ok()) overall.Add(corr.value());

    for (int s = 0; s < kNumStrata; ++s) {
      std::vector<double> sdl_s, mech_s;
      for (size_t i = 0; i < cells.indices.size(); ++i) {
        if (cells.strata[i] != s) continue;
        sdl_s.push_back(sdl_release[i]);
        mech_s.push_back(mech_release[i]);
      }
      if (sdl_s.size() < 2) continue;
      auto corr_s = SpearmanCorrelation(mech_s, sdl_s);
      if (corr_s.ok()) per_stratum[s].Add(corr_s.value());
    }
  }
  StratifiedCorrelation result;
  result.overall = overall.mean();
  for (int s = 0; s < kNumStrata; ++s) {
    result.by_stratum[s] = per_stratum[s].mean();
  }
  return result;
}

Result<ExperimentRunner::RelativeErrorComparison>
ExperimentRunner::CompareRelativeError(
    const lodes::MarginalQuery& query,
    const mechanisms::CountMechanism& mechanism, double threshold,
    const CellFilter& filter) {
  const FilteredCells cells = ApplyFilter(query, filter);
  const size_t n = cells.indices.size();
  std::vector<double> mech_abs(n, 0.0), sdl_abs(n, 0.0);

  Rng sdl_rng(config_.seed ^ 0x5D1Au);
  Rng mech_rng(config_.seed ^ 0x3EC4u);
  for (int t = 0; t < config_.trials; ++t) {
    Rng sdl_trial = sdl_rng.Fork(t);
    Rng mech_trial = mech_rng.Fork(t);
    EEP_ASSIGN_OR_RETURN(std::vector<double> sdl_release,
                         ReleaseWithSdl(query, cells, sdl_trial));
    EEP_ASSIGN_OR_RETURN(
        std::vector<double> mech_release,
        ReleaseWithMechanism(query, mechanism, cells, mech_trial));
    for (size_t i = 0; i < n; ++i) {
      const double truth =
          static_cast<double>(query.cells()[cells.indices[i]].count);
      sdl_abs[i] += std::abs(sdl_release[i] - truth);
      mech_abs[i] += std::abs(mech_release[i] - truth);
    }
  }

  RelativeErrorComparison result;
  int64_t within = 0;
  for (size_t i = 0; i < n; ++i) {
    const double truth =
        static_cast<double>(query.cells()[cells.indices[i]].count);
    if (truth <= 0.0) continue;
    const double mech_rel = mech_abs[i] / config_.trials / truth;
    const double sdl_rel = sdl_abs[i] / config_.trials / truth;
    ++result.cells_considered;
    result.mean_mechanism_rel += mech_rel;
    result.mean_baseline_rel += sdl_rel;
    if (mech_rel - sdl_rel <= threshold) ++within;
  }
  if (result.cells_considered == 0) {
    return Status::InvalidArgument("no cells with positive counts");
  }
  result.fraction_within =
      static_cast<double>(within) /
      static_cast<double>(result.cells_considered);
  result.mean_mechanism_rel /=
      static_cast<double>(result.cells_considered);
  result.mean_baseline_rel /= static_cast<double>(result.cells_considered);
  return result;
}

Result<std::vector<double>> ExperimentRunner::SdlReleaseOnce(
    const lodes::MarginalQuery& query, uint64_t trial_seed) {
  const FilteredCells cells = ApplyFilter(query, nullptr);
  Rng rng(trial_seed);
  return ReleaseWithSdl(query, cells, rng);
}

}  // namespace eep::eval
