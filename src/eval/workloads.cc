#include "eval/workloads.h"

#include "graph/truncation.h"
#include "lodes/attributes.h"
#include "lodes/workload.h"
#include "mechanisms/geometric.h"
#include "mechanisms/laplace.h"
#include "mechanisms/log_laplace.h"
#include "mechanisms/smooth_gamma.h"
#include "mechanisms/smooth_laplace.h"
#include "mechanisms/truncated_laplace.h"

namespace eep::eval {

const char* MechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kLogLaplace: return "Log-Laplace";
    case MechanismKind::kSmoothLaplace: return "Smooth Laplace";
    case MechanismKind::kSmoothGamma: return "Smooth Gamma";
    case MechanismKind::kEdgeLaplace: return "Edge-Laplace";
    case MechanismKind::kSmoothGeometric: return "Smooth Geometric";
  }
  return "unknown";
}

Result<MechanismKind> MechanismKindByName(const std::string& name) {
  if (name == "log_laplace") return MechanismKind::kLogLaplace;
  if (name == "smooth_laplace") return MechanismKind::kSmoothLaplace;
  if (name == "smooth_gamma") return MechanismKind::kSmoothGamma;
  if (name == "edge_laplace") return MechanismKind::kEdgeLaplace;
  if (name == "geometric") return MechanismKind::kSmoothGeometric;
  return Status::InvalidArgument(
      "unknown mechanism \"" + name +
      "\" (use log_laplace|smooth_laplace|smooth_gamma|edge_laplace|"
      "geometric)");
}

Result<std::unique_ptr<mechanisms::CountMechanism>> MakeMechanism(
    MechanismKind kind, double alpha, double epsilon, double delta) {
  privacy::PrivacyParams params{alpha, epsilon, delta};
  switch (kind) {
    case MechanismKind::kLogLaplace: {
      params.delta = 0.0;
      EEP_ASSIGN_OR_RETURN(auto mech,
                           mechanisms::LogLaplaceMechanism::Create(params));
      // The paper omits Log-Laplace points with unbounded expectation
      // (Lemma 8.2); treat them as infeasible grid points.
      if (!mech.HasBoundedExpectation()) {
        return Status::InvalidArgument(
            "Log-Laplace expectation unbounded (lambda >= 1)");
      }
      return std::unique_ptr<mechanisms::CountMechanism>(
          new mechanisms::LogLaplaceMechanism(mech));
    }
    case MechanismKind::kSmoothLaplace: {
      EEP_ASSIGN_OR_RETURN(auto mech,
                           mechanisms::SmoothLaplaceMechanism::Create(params));
      return std::unique_ptr<mechanisms::CountMechanism>(
          new mechanisms::SmoothLaplaceMechanism(mech));
    }
    case MechanismKind::kSmoothGamma: {
      params.delta = 0.0;
      EEP_ASSIGN_OR_RETURN(auto mech,
                           mechanisms::SmoothGammaMechanism::Create(params));
      return std::unique_ptr<mechanisms::CountMechanism>(
          new mechanisms::SmoothGammaMechanism(mech));
    }
    case MechanismKind::kEdgeLaplace: {
      EEP_ASSIGN_OR_RETURN(auto mech,
                           mechanisms::EdgeLaplaceMechanism::Create(epsilon));
      return std::unique_ptr<mechanisms::CountMechanism>(
          new mechanisms::EdgeLaplaceMechanism(mech));
    }
    case MechanismKind::kSmoothGeometric: {
      EEP_ASSIGN_OR_RETURN(auto mech,
                           mechanisms::GeometricMechanism::Create(params));
      return std::unique_ptr<mechanisms::CountMechanism>(
          new mechanisms::GeometricMechanism(mech));
    }
  }
  return Status::InvalidArgument("unknown mechanism kind");
}

int64_t Workloads::FemaleCollegeSlice() {
  // Worker-attr key packing for {sex, education}: sex * |education| + edu.
  return static_cast<int64_t>(lodes::FemaleCode()) *
             static_cast<int64_t>(lodes::EducationCodes().size()) +
         static_cast<int64_t>(lodes::CollegeCode());
}

Status Workloads::EnsureMarginals() {
  if (estab_marginal_.has_value()) return Status::OK();
  // One fused pass serves every figure: the workload's finest
  // cross-classification (the sex x education marginal) is scanned once and
  // the establishment marginal rolls up from it (see lodes/workload.h).
  EEP_ASSIGN_OR_RETURN(
      std::vector<lodes::MarginalQuery> queries,
      lodes::ComputeWorkload(*data_, lodes::WorkloadSpec::PaperTabulations(),
                             threads_));
  estab_marginal_.emplace(std::move(queries[0]));
  sexedu_marginal_.emplace(std::move(queries[1]));
  return Status::OK();
}

Result<const lodes::MarginalQuery*> Workloads::EstabMarginal() {
  EEP_RETURN_NOT_OK(EnsureMarginals());
  return &*estab_marginal_;
}

Result<const lodes::MarginalQuery*> Workloads::SexEduMarginal() {
  EEP_RETURN_NOT_OK(EnsureMarginals());
  return &*sexedu_marginal_;
}

namespace {

CellFilter SliceFilter(std::optional<int64_t> worker_slice,
                       int64_t worker_domain) {
  if (!worker_slice.has_value()) return nullptr;
  const uint64_t slice = static_cast<uint64_t>(*worker_slice);
  const uint64_t domain = static_cast<uint64_t>(worker_domain);
  return [slice, domain](const lodes::MarginalCell& cell) {
    return cell.key % domain == slice;
  };
}

}  // namespace

Result<std::vector<FigurePoint>> Workloads::RatioSweep(
    const lodes::MarginalQuery& query, const WorkloadGrids& grids,
    double budget_divisor, std::optional<int64_t> worker_slice) {
  std::vector<FigurePoint> points;
  const CellFilter filter =
      SliceFilter(worker_slice, query.WorkerDomainSize());
  for (MechanismKind kind : grids.kinds) {
    for (double epsilon : grids.epsilons) {
      for (double alpha : grids.alphas) {
        FigurePoint point;
        point.kind = kind;
        point.epsilon = epsilon;
        point.alpha = alpha;
        auto mech = MakeMechanism(kind, alpha, epsilon / budget_divisor,
                                  grids.delta);
        if (!mech.ok()) {
          point.feasible = false;
          point.infeasible_reason = mech.status().message();
          points.push_back(std::move(point));
          continue;
        }
        EEP_ASSIGN_OR_RETURN(ErrorRatioResult ratio,
                             runner_.ErrorRatio(query, *mech.value(),
                                                filter));
        point.feasible = true;
        point.overall = ratio.overall_ratio;
        point.by_stratum = ratio.stratum_ratio;
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

Result<std::vector<FigurePoint>> Workloads::RankingSweep(
    const lodes::MarginalQuery& query, const WorkloadGrids& grids,
    double budget_divisor, std::optional<int64_t> worker_slice) {
  std::vector<FigurePoint> points;
  const CellFilter filter =
      SliceFilter(worker_slice, query.WorkerDomainSize());
  for (MechanismKind kind : grids.kinds) {
    for (double epsilon : grids.epsilons) {
      for (double alpha : grids.alphas) {
        FigurePoint point;
        point.kind = kind;
        point.epsilon = epsilon;
        point.alpha = alpha;
        auto mech = MakeMechanism(kind, alpha, epsilon / budget_divisor,
                                  grids.delta);
        if (!mech.ok()) {
          point.feasible = false;
          point.infeasible_reason = mech.status().message();
          points.push_back(std::move(point));
          continue;
        }
        EEP_ASSIGN_OR_RETURN(
            StratifiedCorrelation corr,
            runner_.RankingCorrelation(query, *mech.value(), filter));
        point.feasible = true;
        point.overall = corr.overall;
        point.by_stratum = corr.by_stratum;
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

Result<std::vector<FigurePoint>> Workloads::Figure1(
    const WorkloadGrids& grids) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, EstabMarginal());
  // Establishment-only marginal: cells parallel-compose (Thm 7.4) so the
  // full budget goes to each cell.
  return RatioSweep(*query, grids, /*budget_divisor=*/1.0, std::nullopt);
}

Result<std::vector<FigurePoint>> Workloads::Figure2(
    const WorkloadGrids& grids) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, EstabMarginal());
  return RankingSweep(*query, grids, /*budget_divisor=*/1.0, std::nullopt);
}

Result<std::vector<FigurePoint>> Workloads::Figure3(
    const WorkloadGrids& grids) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, SexEduMarginal());
  // A single (sex, education) query: one cell per workplace combination,
  // weak privacy, parallel composition across establishments -> per-cell
  // budget is the full epsilon. We use the (female, BA+) slice.
  return RatioSweep(*query, grids, /*budget_divisor=*/1.0,
                    FemaleCollegeSlice());
}

Result<std::vector<FigurePoint>> Workloads::Figure4(
    const WorkloadGrids& grids) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, SexEduMarginal());
  // The full worker x workplace marginal under weak privacy: Thm 7.5 does
  // not apply, so the d = |dom(sex) x dom(edu)| cells of one establishment
  // compose sequentially and each cell gets epsilon / d.
  const double d = static_cast<double>(query->WorkerDomainSize());
  return RatioSweep(*query, grids, /*budget_divisor=*/d, std::nullopt);
}

Result<std::vector<FigurePoint>> Workloads::Figure5(
    const WorkloadGrids& grids) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, SexEduMarginal());
  return RankingSweep(*query, grids, /*budget_divisor=*/1.0,
                      FemaleCollegeSlice());
}

Result<std::vector<Workloads::TruncatedPoint>> Workloads::Finding6(
    const std::vector<int64_t>& thetas,
    const std::vector<double>& epsilons) {
  EEP_ASSIGN_OR_RETURN(const lodes::MarginalQuery* query, EstabMarginal());
  EEP_ASSIGN_OR_RETURN(graph::BipartiteGraph g, data_->BuildGraph());
  std::vector<TruncatedPoint> points;
  for (int64_t theta : thetas) {
    EEP_ASSIGN_OR_RETURN(graph::TruncationResult truncation,
                         graph::TruncateByDegree(g, theta));
    for (double epsilon : epsilons) {
      EEP_ASSIGN_OR_RETURN(
          auto mech,
          mechanisms::TruncatedLaplaceMechanism::Create(
              theta, epsilon, truncation.removed_estabs));
      TruncatedPoint point;
      point.theta = theta;
      point.epsilon = epsilon;
      point.removed_estabs =
          static_cast<int64_t>(truncation.removed_estabs.size());
      point.removed_jobs = truncation.removed_edges;
      EEP_ASSIGN_OR_RETURN(ErrorRatioResult ratio,
                           runner_.ErrorRatio(*query, mech, nullptr));
      point.error_ratio = ratio.overall_ratio;
      EEP_ASSIGN_OR_RETURN(StratifiedCorrelation corr,
                           runner_.RankingCorrelation(*query, mech, nullptr));
      point.spearman = corr.overall;
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace eep::eval
