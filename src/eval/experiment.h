// The multi-trial experiment runner behind every figure: releases a
// marginal with the SDL baseline and with a formally private mechanism,
// accumulates L1 errors and rank correlations overall and per place-size
// stratum, and reports ratios (the paper's "cost of formal privacy").
#ifndef EEP_EVAL_EXPERIMENT_H_
#define EEP_EVAL_EXPERIMENT_H_

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "eval/strata.h"
#include "lodes/marginal.h"
#include "mechanisms/mechanism.h"
#include "sdl/noise_infusion.h"

namespace eep::eval {

/// \brief Configuration shared by all experiments.
struct ExperimentConfig {
  /// Independent trials per measurement (the paper uses 20).
  int trials = 20;
  uint64_t seed = 7;
  /// Worker threads for the error experiments. Trials use independently
  /// forked RNG streams, so results are bitwise identical for any thread
  /// count; raise this for full-scale (10.9M-job) runs.
  int threads = 1;
  sdl::NoiseInfusionParams sdl_params;
};

/// \brief Per-stratum and overall L1 error totals (summed across cells,
/// averaged across trials).
struct StratifiedError {
  double overall = 0.0;
  std::array<double, kNumStrata> by_stratum{};
  /// Number of cells contributing to each stratum (trial-invariant).
  std::array<int64_t, kNumStrata> cells_by_stratum{};
  int64_t total_cells = 0;
};

/// \brief Ratio of a mechanism's stratified error to the SDL baseline's.
struct ErrorRatioResult {
  StratifiedError mechanism;
  StratifiedError baseline;
  double overall_ratio = 0.0;
  std::array<double, kNumStrata> stratum_ratio{};
};

/// \brief Spearman rank correlations against the SDL ordering, overall and
/// per stratum (averaged across trials; NaN-free: strata with < 2 cells
/// report 0).
struct StratifiedCorrelation {
  double overall = 0.0;
  std::array<double, kNumStrata> by_stratum{};
};

/// Restricts an experiment to a subset of cells (e.g. one sex x education
/// slice). Returning true keeps the cell.
using CellFilter = std::function<bool(const lodes::MarginalCell&)>;

/// \brief Runs SDL-vs-mechanism comparisons on one dataset.
class ExperimentRunner {
 public:
  ExperimentRunner(const lodes::LodesDataset* data, ExperimentConfig config)
      : data_(data), config_(config) {}

  const ExperimentConfig& config() const { return config_; }

  /// Average (over trials) stratified L1 error of the SDL baseline on the
  /// filtered cells of `query`. Each trial draws fresh distortion factors.
  Result<StratifiedError> SdlError(const lodes::MarginalQuery& query,
                                   const CellFilter& filter = nullptr);

  /// Average stratified L1 error of `mechanism` on the filtered cells.
  Result<StratifiedError> MechanismError(const lodes::MarginalQuery& query,
                                         const mechanisms::CountMechanism& mechanism,
                                         const CellFilter& filter = nullptr);

  /// Mechanism-vs-SDL error ratio (Figures 1, 3, 4).
  Result<ErrorRatioResult> ErrorRatio(const lodes::MarginalQuery& query,
                                      const mechanisms::CountMechanism& mechanism,
                                      const CellFilter& filter = nullptr);

  /// Spearman correlation between the mechanism's released cell values and
  /// the SDL baseline's, per trial, averaged (Figures 2 and 5). `values`
  /// picks which released quantity ranks the cells — by default the cell
  /// count itself; Ranking 2 passes a slice filter instead.
  Result<StratifiedCorrelation> RankingCorrelation(
      const lodes::MarginalQuery& query,
      const mechanisms::CountMechanism& mechanism,
      const CellFilter& filter = nullptr);

  /// One SDL release of the filtered cells (single trial), exposed for
  /// examples and tests.
  Result<std::vector<double>> SdlReleaseOnce(const lodes::MarginalQuery& query,
                                             uint64_t trial_seed);

  /// \brief Per-cell relative-error comparison backing the paper's
  /// Finding-1 percentages ("relative L1 within 10 percentage points of
  /// SDL for 65% of the counts").
  struct RelativeErrorComparison {
    /// Fraction of considered cells whose mechanism relative error exceeds
    /// the SDL relative error by at most `threshold`.
    double fraction_within = 0.0;
    /// Cells with positive true counts (relative error defined).
    int64_t cells_considered = 0;
    /// Mean relative error of mechanism and baseline over those cells.
    double mean_mechanism_rel = 0.0;
    double mean_baseline_rel = 0.0;
  };

  /// Compares trial-averaged per-cell relative errors of `mechanism`
  /// against the SDL baseline. Only cells with positive true counts are
  /// considered.
  Result<RelativeErrorComparison> CompareRelativeError(
      const lodes::MarginalQuery& query,
      const mechanisms::CountMechanism& mechanism, double threshold = 0.10,
      const CellFilter& filter = nullptr);

 private:
  /// Indices of cells passing the filter, with their strata.
  struct FilteredCells {
    std::vector<size_t> indices;
    std::vector<int> strata;
  };
  FilteredCells ApplyFilter(const lodes::MarginalQuery& query,
                            const CellFilter& filter) const;

  /// Releases the filtered cells once for a trial.
  using TrialReleaseFn = std::function<Result<std::vector<double>>(
      const lodes::MarginalQuery&, const FilteredCells&, Rng&)>;

  /// Runs config_.trials releases (possibly across config_.threads worker
  /// threads; bitwise deterministic either way) and averages the
  /// stratified L1 totals.
  Result<StratifiedError> RunErrorTrials(const lodes::MarginalQuery& query,
                                         const FilteredCells& cells,
                                         uint64_t seed_salt,
                                         const TrialReleaseFn& release) const;

  Result<std::vector<double>> ReleaseWithMechanism(
      const lodes::MarginalQuery& query,
      const mechanisms::CountMechanism& mechanism,
      const FilteredCells& cells, Rng& rng) const;

  Result<std::vector<double>> ReleaseWithSdl(const lodes::MarginalQuery& query,
                                             const FilteredCells& cells,
                                             Rng& rng) const;

  const lodes::LodesDataset* data_;
  ExperimentConfig config_;
};

}  // namespace eep::eval

#endif  // EEP_EVAL_EXPERIMENT_H_
