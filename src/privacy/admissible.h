// Admissible noise distributions (Definition 8.3, Lemmas 8.6 and 9.1):
// the sliding/dilation budget splits that make smooth-sensitivity noise
// private, plus numeric checkers the property tests use to validate the
// analytic claims.
#ifndef EEP_PRIVACY_ADMISSIBLE_H_
#define EEP_PRIVACY_ADMISSIBLE_H_

#include <functional>

#include "common/status.h"

namespace eep::privacy {

/// \brief An (a, b)-admissibility certificate: noise Z scaled as
/// M(x) = q(x) + S(x)/a · Z is private when S is a b-smooth upper bound on
/// local sensitivity (Theorem 8.4).
struct AdmissibleBudget {
  /// Sliding parameter: shifts up to `a` cost at most epsilon_1.
  double a = 0.0;
  /// Dilation parameter: log-scalings up to `b` cost at most epsilon_2.
  double b = 0.0;
  /// Failure probability carried by the distribution (0 for pure privacy).
  double delta = 0.0;
};

/// Lemma 8.6: h(z) ∝ 1/(1+|z|^gamma) is
/// (eps1/(1+gamma), eps2/(1+gamma))-admissible with delta = 0, for any
/// split eps1 + eps2 <= eps. Fails unless gamma > 0 and both budgets > 0.
Result<AdmissibleBudget> GeneralizedCauchyAdmissible(double eps1, double eps2,
                                                     double gamma);

/// Lemma 9.1: the Laplace distribution is
/// (eps/2, eps/(2·ln(1/delta)))-admissible. Fails unless delta in (0, 1).
Result<AdmissibleBudget> LaplaceAdmissible(double eps, double delta);

/// \brief Numeric admissibility checker over a density.
///
/// Verifies the sliding property — Pr[Z in S] <= e^eps1 Pr[Z in S+shift] +
/// delta/2 — via the pointwise density-ratio sufficient condition
/// h(z) <= e^eps1 · h(z + shift) on a grid, and the dilation property via
/// e^lambda·h(e^lambda z) >= e^-eps2 · h(z). Grid-based, so a pass is
/// strong evidence rather than proof; property tests pair it with the
/// analytic lemmas.
struct AdmissibilityCheck {
  bool sliding_ok = false;
  bool dilation_ok = false;
  double worst_sliding_log_ratio = 0.0;
  double worst_dilation_log_ratio = 0.0;
};

AdmissibilityCheck CheckAdmissibilityOnGrid(
    const std::function<double(double)>& pdf, double a, double b,
    double eps1, double eps2, double grid_halfwidth = 60.0,
    int grid_points = 6001);

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_ADMISSIBLE_H_
