#include "privacy/admissible.h"

#include <algorithm>
#include <cmath>

namespace eep::privacy {

Result<AdmissibleBudget> GeneralizedCauchyAdmissible(double eps1, double eps2,
                                                     double gamma) {
  if (!(eps1 > 0.0) || !(eps2 > 0.0)) {
    return Status::InvalidArgument("budget split must be positive");
  }
  if (!(gamma > 0.0)) return Status::InvalidArgument("gamma must be > 0");
  AdmissibleBudget budget;
  budget.a = eps1 / (1.0 + gamma);
  budget.b = eps2 / (1.0 + gamma);
  budget.delta = 0.0;
  return budget;
}

Result<AdmissibleBudget> LaplaceAdmissible(double eps, double delta) {
  if (!(eps > 0.0)) return Status::InvalidArgument("eps must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  AdmissibleBudget budget;
  budget.a = eps / 2.0;
  budget.b = eps / (2.0 * std::log(1.0 / delta));
  budget.delta = delta;
  return budget;
}

AdmissibilityCheck CheckAdmissibilityOnGrid(
    const std::function<double(double)>& pdf, double a, double b,
    double eps1, double eps2, double grid_halfwidth, int grid_points) {
  AdmissibilityCheck check;
  check.sliding_ok = true;
  check.dilation_ok = true;
  const double step = 2.0 * grid_halfwidth / (grid_points - 1);

  for (int i = 0; i < grid_points; ++i) {
    const double z = -grid_halfwidth + step * i;
    const double h = pdf(z);
    if (h <= 0.0) continue;

    // Sliding: h(z) <= e^{eps1} h(z + delta) for |delta| <= a. The worst
    // shift on a unimodal symmetric density is the full +/-a; check both.
    for (double shift : {a, -a}) {
      const double h_shifted = pdf(z + shift);
      if (h_shifted <= 0.0) {
        check.sliding_ok = false;
        continue;
      }
      const double log_ratio = std::log(h / h_shifted);
      check.worst_sliding_log_ratio =
          std::max(check.worst_sliding_log_ratio, log_ratio);
      if (log_ratio > eps1 + 1e-9) check.sliding_ok = false;
    }

    // Dilation: h(z) <= e^{eps2} e^{lambda} h(e^{lambda} z) for
    // |lambda| <= b; extremes again at +/-b.
    for (double lambda : {b, -b}) {
      const double h_dilated = std::exp(lambda) * pdf(std::exp(lambda) * z);
      if (h_dilated <= 0.0) {
        check.dilation_ok = false;
        continue;
      }
      const double log_ratio = std::log(h / h_dilated);
      check.worst_dilation_log_ratio =
          std::max(check.worst_dilation_log_ratio, log_ratio);
      if (log_ratio > eps2 + 1e-9) check.dilation_ok = false;
    }
  }
  return check;
}

}  // namespace eep::privacy
