#include "privacy/requirements.h"

namespace eep::privacy {

const char* RequirementName(Requirement req) {
  switch (req) {
    case Requirement::kIndividuals: return "Individuals";
    case Requirement::kEmployerSize: return "Emp. Size";
    case Requirement::kEmployerShape: return "Emp. Shape";
  }
  return "unknown";
}

const char* ProtectionMethodName(ProtectionMethod method) {
  switch (method) {
    case ProtectionMethod::kInputNoiseInfusion:
      return "Input Noise Infusion (Sec. 5)";
    case ProtectionMethod::kDifferentialPrivacyEdges:
      return "Differential Privacy (individuals, Sec. 6)";
    case ProtectionMethod::kDifferentialPrivacyNodes:
      return "Differential Privacy (establishments, Sec. 6)";
    case ProtectionMethod::kErEePrivacy:
      return "ER-EE-privacy (Sec. 7)";
    case ProtectionMethod::kWeakErEePrivacy:
      return "Weak ER-EE privacy (Sec. 7)";
  }
  return "unknown";
}

const char* SatisfactionName(Satisfaction s) {
  switch (s) {
    case Satisfaction::kNo: return "No";
    case Satisfaction::kYes: return "Yes";
    case Satisfaction::kYesForWeakAdversaries: return "Yes*";
  }
  return "unknown";
}

Satisfaction Satisfies(ProtectionMethod method, Requirement req) {
  switch (method) {
    case ProtectionMethod::kInputNoiseInfusion:
      // All three fail: the executable attacks in sdl/attacks.h are the
      // constructive proofs.
      return Satisfaction::kNo;
    case ProtectionMethod::kDifferentialPrivacyEdges:
      // Edge-DP protects individuals but lets establishment size/shape be
      // learned to +-O(1/eps) (Claim B.1).
      return req == Requirement::kIndividuals ? Satisfaction::kYes
                                              : Satisfaction::kNo;
    case ProtectionMethod::kDifferentialPrivacyNodes:
      return Satisfaction::kYes;
    case ProtectionMethod::kErEePrivacy:
      // Theorem 7.1.
      return Satisfaction::kYes;
    case ProtectionMethod::kWeakErEePrivacy:
      // Theorem 7.2: size requirement only against weak adversaries.
      return req == Requirement::kEmployerSize
                 ? Satisfaction::kYesForWeakAdversaries
                 : Satisfaction::kYes;
  }
  return Satisfaction::kNo;
}

std::vector<ProtectionMethod> AllProtectionMethods() {
  return {ProtectionMethod::kInputNoiseInfusion,
          ProtectionMethod::kDifferentialPrivacyEdges,
          ProtectionMethod::kDifferentialPrivacyNodes,
          ProtectionMethod::kErEePrivacy,
          ProtectionMethod::kWeakErEePrivacy};
}

std::vector<Requirement> AllRequirements() {
  return {Requirement::kIndividuals, Requirement::kEmployerSize,
          Requirement::kEmployerShape};
}

}  // namespace eep::privacy
