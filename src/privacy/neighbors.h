// Strong and weak alpha-neighbor relations (Definitions 7.1 and 7.3) over
// explicit "micro databases" — small enough to enumerate, used by the
// property tests and the Pufferfish verification harness to check the
// privacy definitions end-to-end.
#ifndef EEP_PRIVACY_NEIGHBORS_H_
#define EEP_PRIVACY_NEIGHBORS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace eep::privacy {

/// \brief A miniature ER-EE database: each establishment is a multiset of
/// worker attribute values (one uint32 per worker, drawn from a small
/// domain). Establishment identity is positional — establishment i in one
/// database corresponds to establishment i in another (their public
/// attributes are fixed and equal).
struct MicroDatabase {
  std::vector<std::vector<uint32_t>> establishments;

  /// Total workers at establishment i.
  int64_t EstabSize(size_t i) const;
  /// Workers at establishment i whose value lies in `property_mask` (bit v
  /// set means attribute value v satisfies phi).
  int64_t EstabPropertyCount(size_t i, uint32_t property_mask) const;
  /// Total workers.
  int64_t TotalSize() const;
  /// Workers in the whole database whose value lies in `property_mask`.
  int64_t PropertyCount(uint32_t property_mask) const;
  /// Largest attribute value present plus one (a floor on the domain size).
  uint32_t DomainUpperBound() const;
};

/// Upper end of the alpha-indistinguishability band for an integer size x:
/// max(floor((1+alpha)·x), x+1), per Definitions 7.1 / 7.3.
int64_t NeighborUpperBound(int64_t x, double alpha);

/// True iff d1 and d2 are strong alpha-neighbors (Def. 7.1): identical
/// except at one establishment e where one worker multiset contains the
/// other and the bigger has size at most NeighborUpperBound(smaller).
bool AreStrongNeighbors(const MicroDatabase& d1, const MicroDatabase& d2,
                        double alpha);

/// True iff d1 and d2 are weak alpha-neighbors (Def. 7.3): identical except
/// at one establishment e where, for EVERY property phi over the attribute
/// domain, phi(smaller) <= phi(bigger) <= NeighborUpperBound(phi(smaller)).
/// Checked by enumerating all 2^domain property masks, so keep test domains
/// tiny.
bool AreWeakNeighbors(const MicroDatabase& d1, const MicroDatabase& d2,
                      double alpha);

/// The metric of Section 7.2 restricted to establishment size: the number
/// of strong-neighbor steps needed to grow an establishment from x to y
/// workers (each step multiplies by at most (1+alpha), or adds one worker
/// when that is larger). Symmetric in its arguments. Fails for negative
/// sizes.
Result<int> SizeNeighborDistance(int64_t x, int64_t y, double alpha);

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_NEIGHBORS_H_
