#include "privacy/accountant.h"

#include <cmath>
#include <utility>

namespace eep::privacy {

Result<PrivacyAccountant> PrivacyAccountant::Create(double alpha,
                                                    double epsilon_budget,
                                                    double delta_budget,
                                                    AdversaryModel model) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha must be finite and >= 0");
  }
  if (!(epsilon_budget > 0.0)) {
    return Status::InvalidArgument("epsilon budget must be > 0");
  }
  if (!(delta_budget >= 0.0 && delta_budget < 1.0)) {
    return Status::InvalidArgument("delta budget must be in [0, 1)");
  }
  return PrivacyAccountant(alpha, epsilon_budget, delta_budget, model);
}

Status PrivacyAccountant::Charge(const std::string& description,
                                 double epsilon, double delta) {
  if (!(epsilon > 0.0) || !(delta >= 0.0)) {
    return Status::InvalidArgument("charge must have epsilon > 0, delta >= 0");
  }
  constexpr double kSlack = 1e-12;  // tolerate float accumulation
  if (spent_epsilon_ + epsilon > epsilon_budget_ + kSlack) {
    return Status::ResourceExhausted(
        "privacy budget exhausted: spent " + std::to_string(spent_epsilon_) +
        " + " + std::to_string(epsilon) + " > " +
        std::to_string(epsilon_budget_));
  }
  if (spent_delta_ + delta > delta_budget_ + kSlack) {
    return Status::ResourceExhausted("delta budget exhausted");
  }
  spent_epsilon_ += epsilon;
  spent_delta_ += delta;
  ledger_.push_back({description, epsilon, delta});
  return Status::OK();
}

Status PrivacyAccountant::ChargeSequential(const std::string& description,
                                           double epsilon, double delta) {
  return Charge(description, epsilon, delta);
}

namespace {

/// (epsilon, delta) actually charged for one marginal under `model` — the
/// single place the weak-model d-multiplier lives.
std::pair<double, double> MarginalTotals(AdversaryModel model, double epsilon,
                                         int64_t worker_domain_size,
                                         double delta) {
  if (model == AdversaryModel::kWeak && worker_domain_size > 1) {
    // Thm. 7.5 fails for weak privacy: cells that partition workers of the
    // SAME establishment compose sequentially, costing d * epsilon.
    return {epsilon * static_cast<double>(worker_domain_size),
            delta * static_cast<double>(worker_domain_size)};
  }
  return {epsilon, delta};
}

}  // namespace

Status PrivacyAccountant::ChargeMarginal(const std::string& description,
                                         double epsilon,
                                         int64_t worker_domain_size,
                                         double delta) {
  if (worker_domain_size < 1) {
    return Status::InvalidArgument("worker_domain_size must be >= 1");
  }
  const auto [total_epsilon, total_delta] =
      MarginalTotals(model_, epsilon, worker_domain_size, delta);
  return Charge(description, total_epsilon, total_delta);
}

Status PrivacyAccountant::ChargeMarginalWorkload(
    const std::vector<MarginalCharge>& marginals) {
  if (marginals.empty()) {
    return Status::InvalidArgument("workload charge needs >= 1 marginal");
  }
  // Validate and total first; apply only when the WHOLE workload fits, so a
  // refusal leaves the ledger untouched.
  double epsilon_sum = 0.0;
  double delta_sum = 0.0;
  for (const MarginalCharge& m : marginals) {
    if (m.worker_domain_size < 1) {
      return Status::InvalidArgument("worker_domain_size must be >= 1");
    }
    if (!(m.epsilon > 0.0) || !(m.delta >= 0.0)) {
      return Status::InvalidArgument(
          "charge must have epsilon > 0, delta >= 0");
    }
    const auto [total_epsilon, total_delta] =
        MarginalTotals(model_, m.epsilon, m.worker_domain_size, m.delta);
    epsilon_sum += total_epsilon;
    delta_sum += total_delta;
  }
  constexpr double kSlack = 1e-12;  // tolerate float accumulation
  if (spent_epsilon_ + epsilon_sum > epsilon_budget_ + kSlack) {
    return Status::ResourceExhausted(
        "privacy budget exhausted: the workload costs " +
        std::to_string(epsilon_sum) + " with " +
        std::to_string(epsilon_budget_ - spent_epsilon_) +
        " remaining; nothing was charged");
  }
  if (spent_delta_ + delta_sum > delta_budget_ + kSlack) {
    return Status::ResourceExhausted(
        "delta budget exhausted by the workload; nothing was charged");
  }
  for (const MarginalCharge& m : marginals) {
    const auto [total_epsilon, total_delta] =
        MarginalTotals(model_, m.epsilon, m.worker_domain_size, m.delta);
    spent_epsilon_ += total_epsilon;
    spent_delta_ += total_delta;
    ledger_.push_back({m.description, total_epsilon, total_delta});
  }
  return Status::OK();
}

}  // namespace eep::privacy
