#include "privacy/accountant.h"

#include <cmath>

namespace eep::privacy {

Result<PrivacyAccountant> PrivacyAccountant::Create(double alpha,
                                                    double epsilon_budget,
                                                    double delta_budget,
                                                    AdversaryModel model) {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha must be finite and >= 0");
  }
  if (!(epsilon_budget > 0.0)) {
    return Status::InvalidArgument("epsilon budget must be > 0");
  }
  if (!(delta_budget >= 0.0 && delta_budget < 1.0)) {
    return Status::InvalidArgument("delta budget must be in [0, 1)");
  }
  return PrivacyAccountant(alpha, epsilon_budget, delta_budget, model);
}

Status PrivacyAccountant::Charge(const std::string& description,
                                 double epsilon, double delta) {
  if (!(epsilon > 0.0) || !(delta >= 0.0)) {
    return Status::InvalidArgument("charge must have epsilon > 0, delta >= 0");
  }
  constexpr double kSlack = 1e-12;  // tolerate float accumulation
  if (spent_epsilon_ + epsilon > epsilon_budget_ + kSlack) {
    return Status::ResourceExhausted(
        "privacy budget exhausted: spent " + std::to_string(spent_epsilon_) +
        " + " + std::to_string(epsilon) + " > " +
        std::to_string(epsilon_budget_));
  }
  if (spent_delta_ + delta > delta_budget_ + kSlack) {
    return Status::ResourceExhausted("delta budget exhausted");
  }
  spent_epsilon_ += epsilon;
  spent_delta_ += delta;
  ledger_.push_back({description, epsilon, delta});
  return Status::OK();
}

Status PrivacyAccountant::ChargeSequential(const std::string& description,
                                           double epsilon, double delta) {
  return Charge(description, epsilon, delta);
}

Status PrivacyAccountant::ChargeMarginal(const std::string& description,
                                         double epsilon,
                                         int64_t worker_domain_size,
                                         double delta) {
  if (worker_domain_size < 1) {
    return Status::InvalidArgument("worker_domain_size must be >= 1");
  }
  double total_epsilon = epsilon;
  double total_delta = delta;
  if (model_ == AdversaryModel::kWeak && worker_domain_size > 1) {
    // Thm. 7.5 fails for weak privacy: cells that partition workers of the
    // SAME establishment compose sequentially, costing d * epsilon.
    total_epsilon = epsilon * static_cast<double>(worker_domain_size);
    total_delta = delta * static_cast<double>(worker_domain_size);
  }
  return Charge(description, total_epsilon, total_delta);
}

}  // namespace eep::privacy
