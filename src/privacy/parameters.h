// Privacy parameters for (alpha, epsilon[, delta])-ER-EE privacy
// (Definitions 7.2, 7.4 and 9.1 of the paper), with the feasibility
// constraints each mechanism imposes and the Table 2 minimum-epsilon rule.
#ifndef EEP_PRIVACY_PARAMETERS_H_
#define EEP_PRIVACY_PARAMETERS_H_

#include "common/status.h"

namespace eep::privacy {

/// \brief Whether a guarantee holds against all informed attackers (strong,
/// Def. 7.2) or only weak attackers with uniform priors over worker
/// attributes (Def. 7.4).
enum class AdversaryModel {
  kInformed,  ///< Strong (alpha, eps)-ER-EE privacy.
  kWeak,      ///< Weak (alpha, eps)-ER-EE privacy.
};

const char* AdversaryModelName(AdversaryModel model);

/// \brief An (alpha, epsilon, delta) privacy target.
///
/// alpha bounds the multiplicative establishment-size indistinguishability
/// band; epsilon the log Bayes factor; delta the failure probability
/// (0 for pure privacy). alpha = 0 degenerates to edge-DP, alpha = infinity
/// to node-DP (Section 7.2).
struct PrivacyParams {
  double alpha = 0.1;
  double epsilon = 1.0;
  double delta = 0.0;

  /// Basic sanity: alpha >= 0, epsilon > 0, delta in [0, 1).
  Status Validate() const;
};

/// Feasibility of the Smooth Gamma mechanism (Algorithm 2): requires
/// 1 + alpha < e^{epsilon/5} so that the dilation budget epsilon_2 =
/// 5·ln(1+alpha) leaves epsilon_1 > 0.
Status CheckSmoothGammaFeasible(const PrivacyParams& params);

/// Feasibility of the Smooth Laplace mechanism (Algorithm 3): requires
/// delta in (0, 1) and 1 + alpha <= e^{epsilon / (2 ln(1/delta))}.
Status CheckSmoothLaplaceFeasible(const PrivacyParams& params);

/// Minimum epsilon for which Smooth Laplace is feasible at given
/// (alpha, delta): epsilon_min = 2 · ln(1/delta) · ln(1+alpha).
/// This is the closed form behind the paper's Table 2 (see EXPERIMENTS.md
/// for a note on two printed entries that deviate from it).
Result<double> MinEpsilonForSmoothLaplace(double alpha, double delta);

/// Log-Laplace noise parameter lambda = 2·ln(1+alpha)/epsilon (Alg. 1).
/// The mechanism's expectation is bounded only when lambda < 1 (Lemma 8.2)
/// and its squared relative error bound needs lambda < 1/2 (Thm. 8.3).
Result<double> LogLaplaceLambda(const PrivacyParams& params);

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_PARAMETERS_H_
