// Table 1 of the paper as code: which protection methods satisfy which of
// the three statutory privacy requirements (Section 4.2). The entries are
// not mere documentation — the unit tests cross-check each "No" against the
// executable attack or counterexample that proves it.
#ifndef EEP_PRIVACY_REQUIREMENTS_H_
#define EEP_PRIVACY_REQUIREMENTS_H_

#include <string>
#include <vector>

namespace eep::privacy {

/// The three requirements of Section 4.2.
enum class Requirement {
  kIndividuals,  ///< Def. 4.1: no re-identification of employees.
  kEmployerSize,  ///< Def. 4.2: size inference bounded to factor alpha.
  kEmployerShape, ///< Def. 4.3: shape inference bounded.
};

/// Protection methods compared in Table 1.
enum class ProtectionMethod {
  kInputNoiseInfusion,          ///< Current SDL (Sec. 5).
  kDifferentialPrivacyEdges,    ///< DP on individuals/jobs (edge-DP, Sec. 6).
  kDifferentialPrivacyNodes,    ///< DP on establishments (node-DP, Sec. 6).
  kErEePrivacy,                 ///< (alpha, eps)-ER-EE privacy (Def. 7.2).
  kWeakErEePrivacy,             ///< Weak (alpha, eps)-ER-EE privacy (Def. 7.4).
};

/// Satisfaction levels in Table 1.
enum class Satisfaction {
  kNo,
  kYes,
  kYesForWeakAdversaries,  ///< The starred entry: weak ER-EE privacy meets
                           ///< the size requirement only against weak
                           ///< adversaries.
};

const char* RequirementName(Requirement req);
const char* ProtectionMethodName(ProtectionMethod method);
const char* SatisfactionName(Satisfaction s);

/// The Table 1 entry for (method, requirement).
Satisfaction Satisfies(ProtectionMethod method, Requirement req);

/// All methods in table order, for report generation.
std::vector<ProtectionMethod> AllProtectionMethods();
/// All requirements in table order.
std::vector<Requirement> AllRequirements();

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_REQUIREMENTS_H_
