#include "privacy/verification.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace eep::privacy {

IndistinguishabilityResult CheckAdditivePair(
    const std::function<double(double)>& noise_pdf, double q1, double scale1,
    double q2, double scale2, double epsilon, double grid_halfwidth,
    int grid_points) {
  IndistinguishabilityResult result;
  const double center = 0.5 * (q1 + q2);
  const double span = grid_halfwidth * std::max(scale1, scale2) +
                      std::abs(q1 - q2);
  const double step = 2.0 * span / (grid_points - 1);
  double worst = -1e300;
  for (int i = 0; i < grid_points; ++i) {
    const double o = center - span + step * i;
    const double f1 = noise_pdf((o - q1) / scale1) / scale1;
    const double f2 = noise_pdf((o - q2) / scale2) / scale2;
    if (f1 <= 0.0 || f2 <= 0.0) continue;
    worst = std::max(worst, std::log(f1 / f2));
  }
  result.max_log_ratio = worst;
  result.passed = worst <= epsilon + 1e-6;
  return result;
}

IndistinguishabilityResult CheckMonteCarloPair(
    const std::function<double(Rng&)>& mech1,
    const std::function<double(Rng&)>& mech2, double epsilon, double delta,
    int samples, int bins, Rng& rng) {
  std::vector<double> draws1(samples), draws2(samples);
  for (int i = 0; i < samples; ++i) draws1[i] = mech1(rng);
  for (int i = 0; i < samples; ++i) draws2[i] = mech2(rng);

  double lo = 1e300, hi = -1e300;
  for (double v : draws1) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : draws2) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) {
    // Point mass on both sides: indistinguishable iff equal.
    IndistinguishabilityResult r;
    r.max_log_ratio = 0.0;
    r.passed = true;
    return r;
  }

  std::vector<double> hist1(bins, 0.0), hist2(bins, 0.0);
  auto bin_of = [&](double v) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    return std::clamp(b, 0, bins - 1);
  };
  for (double v : draws1) hist1[bin_of(v)] += 1.0;
  for (double v : draws2) hist2[bin_of(v)] += 1.0;

  // Normal-approximation slack on each bin mass; three sigmas of the
  // binomial standard error keeps the false-failure rate negligible.
  const double n = static_cast<double>(samples);
  IndistinguishabilityResult result;
  result.passed = true;
  double worst = -1e300;
  for (int b = 0; b < bins; ++b) {
    const double p1 = hist1[b] / n;
    const double p2 = hist2[b] / n;
    const double se = 3.0 * std::sqrt((p1 + p2 + 1e-12) / n);
    const double allowed = std::exp(epsilon) * (p2 + se) + delta + se;
    if (p1 > allowed) result.passed = false;
    if (p1 > 0.0 && p2 > 0.0) {
      worst = std::max(worst, std::log(p1 / p2));
    }
  }
  result.max_log_ratio = worst;
  return result;
}

Result<double> MaxLogBayesFactor(const std::vector<double>& priors,
                                 const std::vector<double>& likelihoods) {
  if (priors.size() != likelihoods.size() || priors.empty()) {
    return Status::InvalidArgument("priors/likelihoods size mismatch");
  }
  // Posterior_i ∝ prior_i * likelihood_i, so the Bayes factor for the pair
  // (a, b) reduces to likelihood_a / likelihood_b; priors validate inputs.
  double max_ll = -1e300, min_ll = 1e300;
  for (size_t i = 0; i < priors.size(); ++i) {
    if (!(priors[i] > 0.0)) continue;  // pairs need positive priors
    if (!(likelihoods[i] >= 0.0)) {
      return Status::InvalidArgument("negative likelihood");
    }
    if (likelihoods[i] <= 0.0) {
      // An output impossible under world i: the Bayes factor against world
      // i is unbounded.
      return std::numeric_limits<double>::infinity();
    }
    max_ll = std::max(max_ll, std::log(likelihoods[i]));
    min_ll = std::min(min_ll, std::log(likelihoods[i]));
  }
  if (max_ll < min_ll) {
    return Status::InvalidArgument("no worlds with positive prior");
  }
  return max_ll - min_ll;
}

}  // namespace eep::privacy
