#include "privacy/parameters.h"

#include <cmath>
#include <string>

namespace eep::privacy {

const char* AdversaryModelName(AdversaryModel model) {
  switch (model) {
    case AdversaryModel::kInformed: return "informed";
    case AdversaryModel::kWeak: return "weak";
  }
  return "unknown";
}

Status PrivacyParams::Validate() const {
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha must be finite and >= 0");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be finite and > 0");
  }
  if (!(delta >= 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  return Status::OK();
}

Status CheckSmoothGammaFeasible(const PrivacyParams& params) {
  EEP_RETURN_NOT_OK(params.Validate());
  if (!(1.0 + params.alpha < std::exp(params.epsilon / 5.0))) {
    return Status::InvalidArgument(
        "Smooth Gamma requires 1+alpha < e^(eps/5); got alpha=" +
        std::to_string(params.alpha) +
        " eps=" + std::to_string(params.epsilon));
  }
  return Status::OK();
}

Status CheckSmoothLaplaceFeasible(const PrivacyParams& params) {
  EEP_RETURN_NOT_OK(params.Validate());
  if (!(params.delta > 0.0)) {
    return Status::InvalidArgument("Smooth Laplace requires delta > 0");
  }
  const double b = params.epsilon / (2.0 * std::log(1.0 / params.delta));
  if (!(1.0 + params.alpha <= std::exp(b))) {
    return Status::InvalidArgument(
        "Smooth Laplace requires 1+alpha <= e^(eps/(2 ln(1/delta)))");
  }
  return Status::OK();
}

Result<double> MinEpsilonForSmoothLaplace(double alpha, double delta) {
  if (!(alpha > 0.0)) return Status::InvalidArgument("alpha must be > 0");
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  return 2.0 * std::log(1.0 / delta) * std::log1p(alpha);
}

Result<double> LogLaplaceLambda(const PrivacyParams& params) {
  EEP_RETURN_NOT_OK(params.Validate());
  if (!(params.alpha > 0.0)) {
    return Status::InvalidArgument("Log-Laplace requires alpha > 0");
  }
  return 2.0 * std::log1p(params.alpha) / params.epsilon;
}

}  // namespace eep::privacy
