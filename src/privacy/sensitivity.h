// Local and smooth sensitivity for ER-EE count queries (Definitions 8.1,
// 8.2 and Lemma 8.5 of the paper).
#ifndef EEP_PRIVACY_SENSITIVITY_H_
#define EEP_PRIVACY_SENSITIVITY_H_

#include <cstdint>

#include "common/status.h"

namespace eep::privacy {

/// Local sensitivity of a cell count under the alpha-neighbor relations:
/// the larger of 1 (one worker added/removed) and x_v·alpha (the dominant
/// establishment's contribution scaled by alpha), where x_v is the largest
/// single-establishment contribution to the cell.
double LocalSensitivity(int64_t x_v, double alpha);

/// b-smooth sensitivity of a cell count (Lemma 8.5):
///   S*_{v,b}(x) = max(x_v·alpha, 1)   when e^b >= 1 + alpha,
///   unbounded (error)                 otherwise.
Result<double> SmoothSensitivity(int64_t x_v, double alpha, double b);

/// The intermediate quantity A^{(j)}(x) = max_{y: d(x,y)<=j} LS(y) used in
/// Definition 8.2: for cell counts this is max(x_v·alpha·(1+alpha)^j, 1).
/// Exposed so property tests can verify the smooth-sensitivity maximization
/// numerically against the closed form.
double LocalSensitivityAtDistance(int64_t x_v, double alpha, int j);

/// Brute-force S*_{v,b} = max_{j=0..max_j} e^{-jb} A^{(j)}(x) for tests.
double SmoothSensitivityBruteForce(int64_t x_v, double alpha, double b,
                                   int max_j);

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_SENSITIVITY_H_
