// Privacy-budget accounting for (alpha, epsilon, delta)-ER-EE privacy:
// sequential composition (Thm. 7.3), parallel composition across disjoint
// establishments (Thm. 7.4) and across disjoint workers under STRONG
// privacy only (Thm. 7.5), and the weak-privacy surcharge d·epsilon for
// marginals containing worker attributes (Section 8).
#ifndef EEP_PRIVACY_ACCOUNTANT_H_
#define EEP_PRIVACY_ACCOUNTANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "privacy/parameters.h"

namespace eep::privacy {

/// \brief One entry in the accountant's ledger.
struct LedgerEntry {
  std::string description;
  double epsilon_charged = 0.0;
  double delta_charged = 0.0;
};

/// \brief Tracks cumulative privacy loss against a fixed budget.
///
/// All releases must share the same alpha and adversary model; mixing
/// models in one ledger is rejected because weak and strong guarantees do
/// not compose with each other in the paper's framework.
class PrivacyAccountant {
 public:
  /// Creates an accountant for a total (epsilon, delta) budget at the given
  /// alpha and adversary model.
  static Result<PrivacyAccountant> Create(double alpha, double epsilon_budget,
                                          double delta_budget,
                                          AdversaryModel model);

  double alpha() const { return alpha_; }
  AdversaryModel model() const { return model_; }
  double epsilon_budget() const { return epsilon_budget_; }
  double spent_epsilon() const { return spent_epsilon_; }
  double spent_delta() const { return spent_delta_; }
  double remaining_epsilon() const { return epsilon_budget_ - spent_epsilon_; }

  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  /// Charges one sequentially composed release (Thm. 7.3). Fails with
  /// ResourceExhausted when the budget would be exceeded; the ledger is
  /// unchanged on failure.
  Status ChargeSequential(const std::string& description, double epsilon,
                          double delta = 0.0);

  /// Charges a full marginal released with per-cell budget `epsilon`:
  ///  * Strong model: cells parallel-compose across both establishments
  ///    (Thm. 7.4) and workers (Thm. 7.5) -> total charge = epsilon.
  ///  * Weak model: parallel composition across workers does NOT hold
  ///    (Thm. 7.5), so a marginal containing worker attributes costs
  ///    worker_domain_size x epsilon; establishment-only marginals still
  ///    parallel-compose.
  Status ChargeMarginal(const std::string& description, double epsilon,
                        int64_t worker_domain_size, double delta = 0.0);

  /// \brief One marginal of an atomically charged workload.
  struct MarginalCharge {
    std::string description;
    double epsilon = 0.0;
    int64_t worker_domain_size = 1;
    double delta = 0.0;
  };

  /// Charges a whole workload of marginals atomically: either every
  /// marginal is charged (one ledger entry each, same rules as
  /// ChargeMarginal) or — when the combined charge would exceed either
  /// budget — nothing is and ResourceExhausted is returned. Release
  /// runners use this so a refused workload never spends budget on tables
  /// the caller does not receive.
  Status ChargeMarginalWorkload(const std::vector<MarginalCharge>& marginals);

 private:
  PrivacyAccountant(double alpha, double eps, double delta,
                    AdversaryModel model)
      : alpha_(alpha),
        epsilon_budget_(eps),
        delta_budget_(delta),
        model_(model) {}

  Status Charge(const std::string& description, double epsilon, double delta);

  double alpha_;
  double epsilon_budget_;
  double delta_budget_;
  AdversaryModel model_;
  double spent_epsilon_ = 0.0;
  double spent_delta_ = 0.0;
  std::vector<LedgerEntry> ledger_;
};

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_ACCOUNTANT_H_
