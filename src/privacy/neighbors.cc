#include "privacy/neighbors.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace eep::privacy {

int64_t MicroDatabase::EstabSize(size_t i) const {
  return static_cast<int64_t>(establishments[i].size());
}

int64_t MicroDatabase::EstabPropertyCount(size_t i,
                                          uint32_t property_mask) const {
  int64_t n = 0;
  for (uint32_t v : establishments[i]) {
    if (property_mask & (1u << v)) ++n;
  }
  return n;
}

int64_t MicroDatabase::TotalSize() const {
  int64_t n = 0;
  for (const auto& e : establishments) n += static_cast<int64_t>(e.size());
  return n;
}

int64_t MicroDatabase::PropertyCount(uint32_t property_mask) const {
  int64_t n = 0;
  for (size_t i = 0; i < establishments.size(); ++i) {
    n += EstabPropertyCount(i, property_mask);
  }
  return n;
}

uint32_t MicroDatabase::DomainUpperBound() const {
  uint32_t ub = 0;
  for (const auto& e : establishments) {
    for (uint32_t v : e) ub = std::max(ub, v + 1);
  }
  return ub;
}

int64_t NeighborUpperBound(int64_t x, double alpha) {
  // Tiny slack absorbs binary representation error in (1+alpha)*x for the
  // exact-integer cases the definitions intend (e.g. alpha=0.1, x=10 -> 11).
  const auto mult = static_cast<int64_t>(
      std::floor((1.0 + alpha) * static_cast<double>(x) + 1e-9));
  return std::max(mult, x + 1);
}

namespace {

// Value -> multiplicity map of one establishment's workers.
std::map<uint32_t, int64_t> Multiset(const std::vector<uint32_t>& workers) {
  std::map<uint32_t, int64_t> ms;
  for (uint32_t v : workers) ++ms[v];
  return ms;
}

// True iff `small` is a sub-multiset of `big`.
bool IsSubMultiset(const std::map<uint32_t, int64_t>& small,
                   const std::map<uint32_t, int64_t>& big) {
  for (const auto& [v, n] : small) {
    auto it = big.find(v);
    if (it == big.end() || it->second < n) return false;
  }
  return true;
}

// Finds the single establishment index where d1 and d2 differ; -1 when they
// are identical, -2 when they differ at more than one index or have
// different establishment counts.
int SingleDifferingEstab(const MicroDatabase& d1, const MicroDatabase& d2) {
  if (d1.establishments.size() != d2.establishments.size()) return -2;
  int differing = -1;
  for (size_t i = 0; i < d1.establishments.size(); ++i) {
    auto a = d1.establishments[i];
    auto b = d2.establishments[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      if (differing >= 0) return -2;
      differing = static_cast<int>(i);
    }
  }
  return differing;
}

}  // namespace

bool AreStrongNeighbors(const MicroDatabase& d1, const MicroDatabase& d2,
                        double alpha) {
  const int idx = SingleDifferingEstab(d1, d2);
  if (idx < 0) return false;  // identical or multiple differences
  const auto ms1 = Multiset(d1.establishments[idx]);
  const auto ms2 = Multiset(d2.establishments[idx]);
  const int64_t n1 = d1.EstabSize(idx);
  const int64_t n2 = d2.EstabSize(idx);
  // Orient so E is the smaller set; Def. 7.1 requires E ⊆ E'.
  const auto& small = n1 <= n2 ? ms1 : ms2;
  const auto& big = n1 <= n2 ? ms2 : ms1;
  const int64_t ns = std::min(n1, n2);
  const int64_t nb = std::max(n1, n2);
  if (!IsSubMultiset(small, big)) return false;
  return nb <= NeighborUpperBound(ns, alpha);
}

bool AreWeakNeighbors(const MicroDatabase& d1, const MicroDatabase& d2,
                      double alpha) {
  const int idx = SingleDifferingEstab(d1, d2);
  if (idx < 0) return false;
  const uint32_t domain =
      std::max(d1.DomainUpperBound(), d2.DomainUpperBound());
  if (domain > 16) return false;  // enumeration guard; tests stay tiny
  // Orient: the direction must be consistent across ALL properties phi.
  auto check_direction = [&](const MicroDatabase& small,
                             const MicroDatabase& big) {
    const uint32_t num_masks = 1u << domain;
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      const int64_t ps = small.EstabPropertyCount(idx, mask);
      const int64_t pb = big.EstabPropertyCount(idx, mask);
      if (pb < ps || pb > NeighborUpperBound(ps, alpha)) return false;
    }
    return true;
  };
  return check_direction(d1, d2) || check_direction(d2, d1);
}

Result<int> SizeNeighborDistance(int64_t x, int64_t y, double alpha) {
  if (x < 0 || y < 0) return Status::InvalidArgument("sizes must be >= 0");
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  int64_t lo = std::min(x, y);
  const int64_t hi = std::max(x, y);
  int steps = 0;
  while (lo < hi) {
    lo = std::min(NeighborUpperBound(lo, alpha), hi);
    ++steps;
    if (steps > 1 << 20) {
      return Status::Internal("size distance did not converge");
    }
  }
  return steps;
}

}  // namespace eep::privacy
