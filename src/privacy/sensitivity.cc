#include "privacy/sensitivity.h"

#include <algorithm>
#include <cmath>

namespace eep::privacy {

double LocalSensitivity(int64_t x_v, double alpha) {
  return std::max(1.0, static_cast<double>(x_v) * alpha);
}

Result<double> SmoothSensitivity(int64_t x_v, double alpha, double b) {
  if (x_v < 0) return Status::InvalidArgument("x_v must be >= 0");
  if (!(alpha >= 0.0) || !(b > 0.0)) {
    return Status::InvalidArgument("need alpha >= 0 and b > 0");
  }
  if (std::exp(b) < 1.0 + alpha) {
    return Status::InvalidArgument(
        "smooth sensitivity unbounded: e^b < 1 + alpha (Lemma 8.5)");
  }
  return LocalSensitivity(x_v, alpha);
}

double LocalSensitivityAtDistance(int64_t x_v, double alpha, int j) {
  // Within j neighbor steps, the dominant establishment's contribution can
  // grow by a factor (1+alpha)^j, so the worst-case local sensitivity is
  // x_v·alpha·(1+alpha)^j (still floored at 1 for the one-worker move).
  return std::max(1.0, static_cast<double>(x_v) * alpha *
                           std::pow(1.0 + alpha, j));
}

double SmoothSensitivityBruteForce(int64_t x_v, double alpha, double b,
                                   int max_j) {
  double best = 0.0;
  for (int j = 0; j <= max_j; ++j) {
    best = std::max(best, std::exp(-b * j) *
                              LocalSensitivityAtDistance(x_v, alpha, j));
  }
  return best;
}

}  // namespace eep::privacy
