// Empirical verification of privacy guarantees: deterministic density-ratio
// checks for additive mechanisms, Monte-Carlo indistinguishability tests on
// arbitrary mechanisms, and posterior/prior Bayes-factor computation on
// micro universes (the Pufferfish semantics of Definitions 4.1/4.2).
//
// These tools back the property-based test suite: every mechanism in
// src/mechanisms is checked against the inequality it claims to satisfy.
#ifndef EEP_PRIVACY_VERIFICATION_H_
#define EEP_PRIVACY_VERIFICATION_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace eep::privacy {

/// \brief Outcome of an indistinguishability check between two output
/// distributions.
struct IndistinguishabilityResult {
  /// Max over tested events of log(Pr1(S) / Pr2(S)) (after subtracting the
  /// allowed delta mass for approximate checks).
  double max_log_ratio = 0.0;
  /// True iff max_log_ratio <= epsilon (+ tolerance).
  bool passed = false;
};

/// Deterministic check for additive-noise mechanisms: M_i(o) has density
/// pdf((o - q_i)/scale_i)/scale_i. Verifies
/// sup_o log(f1(o)/f2(o)) <= epsilon on a grid around both centers.
/// Suitable for Laplace / generalized-Cauchy noise where the pointwise
/// density ratio bounds every event ratio.
IndistinguishabilityResult CheckAdditivePair(
    const std::function<double(double)>& noise_pdf, double q1, double scale1,
    double q2, double scale2, double epsilon, double grid_halfwidth = 80.0,
    int grid_points = 8001);

/// Monte-Carlo check over histogram events for arbitrary real-output
/// mechanisms: draws `samples` outputs from each of two mechanisms, bins
/// them, and tests Pr1[bin] <= e^epsilon Pr2[bin] + delta with a slack
/// proportional to sampling error. Coarse by nature; use for integration
/// tests with generous sample counts.
IndistinguishabilityResult CheckMonteCarloPair(
    const std::function<double(Rng&)>& mech1,
    const std::function<double(Rng&)>& mech2, double epsilon, double delta,
    int samples, int bins, Rng& rng);

/// \brief Pufferfish Bayes-factor computation on a finite secret space.
///
/// Given prior probabilities over a finite set of "worlds" and, for each
/// world, the probability of the observed output, computes the largest
/// log Bayes factor log[ (post_a/post_b) / (prior_a/prior_b) ] over all
/// world pairs (a, b). Definitions 4.1/4.2 require this to be <= epsilon
/// for the relevant pairs.
Result<double> MaxLogBayesFactor(const std::vector<double>& priors,
                                 const std::vector<double>& likelihoods);

}  // namespace eep::privacy

#endif  // EEP_PRIVACY_VERIFICATION_H_
