#include "common/csv.h"

#include <cstdio>
#include <sstream>

#include "common/file.h"

namespace eep {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  if (header_written_) {
    return Status::FailedPrecondition("CSV header already written");
  }
  if (rows_written_ > 0) {
    return Status::FailedPrecondition("CSV rows already written");
  }
  header_written_ = true;
  arity_ = columns.size();
  std::vector<std::string> copy = columns;
  for (size_t i = 0; i < copy.size(); ++i) {
    *out_ << CsvEscape(copy[i]) << (i + 1 < copy.size() ? "," : "");
  }
  *out_ << '\n';
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (header_written_ && fields.size() != arity_) {
    return Status::InvalidArgument("CSV row arity does not match header");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    *out_ << CsvEscape(fields[i]) << (i + 1 < fields.size() ? "," : "");
  }
  *out_ << '\n';
  ++rows_written_;
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<double>& fields) {
  std::vector<std::string> as_text;
  as_text.reserve(fields.size());
  char buf[64];
  for (double v : fields) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    as_text.emplace_back(buf);
  }
  return WriteRow(as_text);
}

std::vector<std::string> CsvParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  // The whole file goes through the Status-returning file layer so open
  // and read failures surface with path + errno instead of an empty
  // document (the old ifstream path never checked the stream state).
  EEP_ASSIGN_OR_RETURN(std::string content,
                       Env::Default()->ReadFileToString(path));
  std::istringstream in(std::move(content));
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = CsvParseLine(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  // Serialize in memory, then write through the file layer: every short
  // write or sync failure is an IOError (with path + errno or the injected
  // failpoint message), and the byte count is verified before returning OK
  // so a torn CSV can never be reported as a successful write.
  std::ostringstream buffer;
  CsvWriter writer(&buffer);
  EEP_RETURN_NOT_OK(writer.WriteHeader(header));
  for (const auto& row : rows) EEP_RETURN_NOT_OK(writer.WriteRow(row));
  const std::string content = buffer.str();

  Env* env = Env::Default();
  EEP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env->NewWritableFile(path));
  EEP_RETURN_NOT_OK(file->Append(content));
  EEP_RETURN_NOT_OK(file->Sync());
  EEP_RETURN_NOT_OK(file->Close());
  // Flush-then-verify: the durable size must match what we serialized.
  EEP_ASSIGN_OR_RETURN(uint64_t on_disk, env->FileSize(path));
  if (on_disk != content.size()) {
    return Status::IOError("short CSV write '" + path + "': " +
                           std::to_string(on_disk) + " of " +
                           std::to_string(content.size()) +
                           " bytes reached disk");
  }
  return Status::OK();
}

}  // namespace eep
