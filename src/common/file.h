// Status-returning file I/O for everything the library persists: the
// release store's segments and manifest, and the CSV reader/writers.
// Library code never touches iostreams or raw descriptors for durable
// data — it goes through Env, which
//
//   * surfaces every failure (open, read, short write, fsync, rename) as
//     a Status::IOError carrying the path and errno,
//   * funnels each primitive through a named failpoint
//     (common/failpoint.h), so tests can deterministically inject faults
//     at every I/O site the process has,
//   * exposes the durability primitives (Sync, SyncDir, atomic rename)
//     the store's commit protocol is built on (docs/ARCHITECTURE.md,
//     "Durability contract").
//
// The eep-lint rule `raw-file-io` enforces the funnel: direct
// ifstream/ofstream/fopen/open(2) use outside src/common/ is a finding.
#ifndef EEP_COMMON_FILE_H_
#define EEP_COMMON_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace eep {

/// \brief Sequential append-only handle to one open file.
///
/// Writes are buffered by the kernel only (no userspace buffer): Append
/// issues write(2) directly, so a short write injected by a failpoint
/// leaves exactly the prefix it claims on disk.
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Appends `n` bytes; loops on partial write(2). On an injected short
  /// write the stated prefix reaches the file and an IOError surfaces.
  Status Append(const char* data, size_t n);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// fsync(2): the bytes appended so far are durable when this returns OK.
  Status Sync();

  /// Closes the descriptor; further operations fail. Idempotent.
  Status Close();

  /// Bytes successfully appended so far (the flush-then-verify length).
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  friend class Env;
  WritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
  uint64_t bytes_written_ = 0;
};

/// \brief Positioned reads from one open file.
class RandomAccessFile {
 public:
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly `n` bytes at `offset` into *out (resized). Reading past
  /// EOF — even partially — is an IOError: callers read framed blocks
  /// whose lengths they know, so a short read means truncation.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  friend class Env;
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

/// \brief The filesystem entry points (POSIX). One process-wide instance;
/// fault injection happens through the failpoint registry, not by
/// subclassing.
class Env {
 public:
  static Env* Default();

  /// Creates/truncates `path` for appending.
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path);
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path);

  /// Whole-file convenience wrappers over the handles above.
  Result<std::string> ReadFileToString(const std::string& path);
  /// Write + (optionally) fsync + close; on success the file holds exactly
  /// `data`.
  Status WriteStringToFile(const std::string& path, const std::string& data,
                           bool sync);

  /// rename(2): atomic replacement of `to` on POSIX filesystems — the
  /// commit point of the store's manifest swap.
  Status RenameFile(const std::string& from, const std::string& to);
  Status RemoveFile(const std::string& path);
  Status CreateDirIfMissing(const std::string& path);
  /// fsync on the directory itself, making a prior rename/create durable.
  Status SyncDir(const std::string& path);

  Result<bool> FileExists(const std::string& path);
  Result<uint64_t> FileSize(const std::string& path);
  /// Regular-file names directly under `path`, sorted.
  Result<std::vector<std::string>> ListDir(const std::string& path);

 private:
  Env() = default;
};

}  // namespace eep

#endif  // EEP_COMMON_FILE_H_
