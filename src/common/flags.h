// A tiny --key=value command-line flag parser for the bench and example
// binaries (no external dependency; gflags-style syntax subset).
#ifndef EEP_COMMON_FLAGS_H_
#define EEP_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace eep {

/// \brief Parsed command-line flags of the form --name=value or --name.
class Flags {
 public:
  /// Parses argv; unknown positional arguments are ignored. A bare "--name"
  /// is recorded with the value "true".
  static Flags Parse(int argc, char** argv);

  /// Value of --name, or `def` when absent or malformed.
  std::string GetString(const std::string& name, std::string def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace eep

#endif  // EEP_COMMON_FLAGS_H_
