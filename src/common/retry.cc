#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace eep {

int64_t RetryPolicy::BackoffMs(int attempt) const {
  if (initial_backoff_ms <= 0) return 0;
  const double mult = multiplier < 1.0 ? 1.0 : multiplier;
  double base = static_cast<double>(initial_backoff_ms) *
                std::pow(mult, static_cast<double>(attempt < 0 ? 0 : attempt));
  const double cap = static_cast<double>(
      max_backoff_ms > 0 ? std::max(max_backoff_ms, initial_backoff_ms)
                         : initial_backoff_ms);
  base = std::min(base, cap);
  double j = jitter;
  if (j > 0.0) {
    j = std::min(j, 0.999);
    // Deterministic per (seed, attempt): any schedule is reproducible and
    // assertable bit-for-bit. Substream(k) never perturbs a shared stream.
    const double u =
        Rng(jitter_seed).Substream(static_cast<uint64_t>(attempt)).Uniform();
    base *= 1.0 - j * u;
  }
  const int64_t ms = static_cast<int64_t>(base);
  return ms < 1 ? 1 : ms;
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace eep
