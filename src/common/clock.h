// Injected time for everything the serving layer schedules: request
// deadlines, refresh backoff, epoch age. Production code reads the one
// process-wide monotonic RealClock; tests inject a FakeClock they advance
// by hand, so every deadline and backoff path is unit-testable without a
// single real sleep (tests/retry_test.cc, tests/service_test.cc).
//
// The domain is plain milliseconds from an arbitrary epoch (process start
// for the real clock, 0 for a fresh fake) — only differences are
// meaningful, which is all deadlines and backoff need.
#ifndef EEP_COMMON_CLOCK_H_
#define EEP_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace eep {

/// \brief Monotonic time source. Thread-safe in both implementations.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since this clock's arbitrary epoch.
  virtual int64_t NowMs() const = 0;

  /// Blocks the calling thread for `ms` milliseconds (<= 0 is a no-op).
  /// The fake clock advances itself instead of blocking, so retry loops
  /// run at full speed under test while still observing a moving clock.
  virtual void SleepMs(int64_t ms) = 0;

  /// The process-wide real clock (never destroyed).
  static Clock* Real();
};

/// \brief std::chrono::steady_clock-backed implementation.
class RealClock : public Clock {
 public:
  RealClock();
  int64_t NowMs() const override;
  void SleepMs(int64_t ms) override;

 private:
  int64_t origin_ns_;  ///< steady_clock at construction; NowMs is relative.
};

/// \brief Deterministic clock for tests: time moves only via AdvanceMs or
/// SleepMs (which advances instead of blocking and records the request,
/// so a test can assert an exact backoff schedule).
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t NowMs() const override {
    return now_ms_.load(std::memory_order_acquire);
  }

  /// Advances the clock and logs `ms` (the SCHEDULED delay, pre-clamp) so
  /// tests can assert the exact sequence of waits a retry loop performed.
  void SleepMs(int64_t ms) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sleeps_.push_back(ms);
    }
    AdvanceMs(ms);
  }

  /// Moves time forward (<= 0 is a no-op); never blocks.
  void AdvanceMs(int64_t ms) {
    if (ms > 0) now_ms_.fetch_add(ms, std::memory_order_acq_rel);
  }

  /// Every SleepMs delay requested so far, in order.
  std::vector<int64_t> sleeps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sleeps_;
  }

 private:
  std::atomic<int64_t> now_ms_;
  mutable std::mutex mu_;
  std::vector<int64_t> sleeps_;
};

}  // namespace eep

#endif  // EEP_COMMON_CLOCK_H_
