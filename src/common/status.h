// Status / Result error handling in the style of RocksDB and Arrow: library
// code never throws across module boundaries; fallible operations return a
// Status (or Result<T>), and callers decide how to react.
#ifndef EEP_COMMON_STATUS_H_
#define EEP_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace eep {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller passed a value outside the documented domain.
  kOutOfRange,         ///< Index or key outside a container's range.
  kNotFound,           ///< Requested entity does not exist.
  kFailedPrecondition, ///< Operation is not valid in the current state.
  kAlreadyExists,      ///< Entity with the same key already present.
  kResourceExhausted,  ///< A budget (e.g. privacy budget) has run out.
  kDeadlineExceeded,   ///< The caller's deadline passed before completion.
  kIOError,            ///< Filesystem or serialization failure.
  kInternal,           ///< Invariant violation inside the library.
};

/// \brief Human readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (message is shared only on error
/// paths, which are expected to be rare).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \brief Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Result of a fallible operation that produces a T on success.
///
/// Holds either a value or an error Status. Accessing the value of an error
/// Result aborts (programming error), mirroring arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Error status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value; aborts if this Result holds an error.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates an error Status from an expression, RocksDB-style.
#define EEP_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::eep::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define EEP_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto EEP_CONCAT_(_res_, __LINE__) = (rexpr);   \
  if (!EEP_CONCAT_(_res_, __LINE__).ok())        \
    return EEP_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(EEP_CONCAT_(_res_, __LINE__)).value()

#define EEP_CONCAT_INNER_(a, b) a##b
#define EEP_CONCAT_(a, b) EEP_CONCAT_INNER_(a, b)

}  // namespace eep

#endif  // EEP_COMMON_STATUS_H_
