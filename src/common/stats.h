// Summary statistics and rank correlation used by the evaluation harness.
#ifndef EEP_COMMON_STATS_H_
#define EEP_COMMON_STATS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace eep {

/// \brief Streaming accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of a normal-approximation 95% confidence interval of the
  /// mean. 0 for fewer than two observations.
  double ci95_halfwidth() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// L1 distance between two equal-length vectors.
Result<double> L1Distance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Average absolute per-coordinate error |a_i - b_i| (L1 / n).
Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Fractional ranks with average-rank tie handling (1-based, as in
/// statistics textbooks). E.g. {10, 20, 20} -> {1, 2.5, 2.5}.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

/// Spearman rank-order correlation between two equal-length vectors, the
/// accuracy measure the paper uses for Rankings 1 and 2. Computed as the
/// Pearson correlation of fractional ranks (correct in the presence of
/// ties). Fails for length < 2 or when either input is constant.
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Pearson correlation. Fails for length < 2, mismatched lengths, or
/// zero-variance inputs.
Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace eep

#endif  // EEP_COMMON_STATS_H_
