#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eep {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

Result<double> L1Distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("L1Distance: length mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty()) return Status::InvalidArgument("MeanAbsoluteError: empty");
  EEP_ASSIGN_OR_RETURN(double l1, L1Distance(a, b));
  return l1 / static_cast<double>(a.size());
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t i, size_t j) { return xs[i] < xs[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("PearsonCorrelation: length mismatch");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("PearsonCorrelation: need >= 2 points");
  }
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return Status::InvalidArgument("PearsonCorrelation: constant input");
  }
  return cov / std::sqrt(var_a * var_b);
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("SpearmanCorrelation: length mismatch");
  }
  return PearsonCorrelation(FractionalRanks(a), FractionalRanks(b));
}

}  // namespace eep
