#include "common/clock.h"

#include <chrono>
#include <thread>

namespace eep {

Clock* Clock::Real() {
  static RealClock* clock = new RealClock();
  return clock;
}

RealClock::RealClock()
    : origin_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count()) {}

int64_t RealClock::NowMs() const {
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return (now_ns - origin_ns_) / 1000000;
}

void RealClock::SleepMs(int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace eep
