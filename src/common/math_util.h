// Small numeric helpers shared across modules.
#ifndef EEP_COMMON_MATH_UTIL_H_
#define EEP_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace eep {

/// Natural log for finite positive normal doubles, accurate to ~2 ulp.
///
/// The classic fdlibm/musl argument reduction (x = 2^k · m with
/// m ∈ [√2/2, √2), then the degree-7 minimax polynomial in s = f/(2+f)
/// for f = m−1), written branch-free so compilers can auto-vectorize the
/// batch noise-transform loops that call it — the libm call is the
/// dominant per-sample cost of inverse-transform Laplace sampling, and a
/// call into libm can neither inline nor vectorize. Deterministic: a pure
/// function of the bits of x, with no libm, errno, or rounding-mode
/// dependence. Callers guarantee x is a positive finite normal double or
/// +0.0 — zero saturates to log(2^-1023) ≈ -709.09 (the reduction treats
/// the zero mantissa/exponent as 1.0·2^-1023), which is how the samplers
/// absorb a zero uniform without a clamping branch (a branch in the
/// transform loop defeats the vectorizer). Other inputs are undefined.
inline double FastLogPositive(double x) {
  constexpr double kLg1 = 6.666666666666735130e-01;
  constexpr double kLg2 = 3.999999999940941908e-01;
  constexpr double kLg3 = 2.857142874366239149e-01;
  constexpr double kLg4 = 2.222219843214978396e-01;
  constexpr double kLg5 = 1.818357216161805012e-01;
  constexpr double kLg6 = 1.531383769920937332e-01;
  constexpr double kLg7 = 1.479819860511658591e-01;
  // ln2 split so k·ln2_hi is exact for |k| < 2^10.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // Mantissa of sqrt(2): fractions above it are reduced to [sqrt(2)/2, 1).
  constexpr uint64_t kSqrt2Mantissa = 0x6A09E667F3BCDULL;

  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const uint64_t frac = bits & 0xFFFFFFFFFFFFFULL;
  const uint64_t in_upper_half = frac >= kSqrt2Mantissa ? 1 : 0;
  const double k =
      static_cast<double>(static_cast<int64_t>(bits >> 52) - 1023 +
                          static_cast<int64_t>(in_upper_half));
  const uint64_t m_bits = frac | ((1022 + (1 - in_upper_half)) << 52);
  double m;
  std::memcpy(&m, &m_bits, sizeof(m));

  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t1 + t2;
  const double hfsq = 0.5 * f * f;
  return k * kLn2Hi - ((hfsq - (s * (hfsq + r) + k * kLn2Lo)) - f);
}

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

/// Rounds to the nearest non-negative integer (used to post-process noisy
/// counts when an integer release is requested).
int64_t RoundNonNegative(double x) noexcept;

/// ceil((1+alpha) * x) as used in the strong alpha-neighbor definition
/// (Def. 7.1): upper end of the indistinguishability band for size x.
int64_t AlphaUpperBound(int64_t x, double alpha);

/// Linear interpolation-based empirical quantile (type-7, the numpy/R
/// default). `sorted_values` must be ascending and non-empty; q in [0,1].
double QuantileSorted(const std::vector<double>& sorted_values, double q);

}  // namespace eep

#endif  // EEP_COMMON_MATH_UTIL_H_
