// Small numeric helpers shared across modules.
#ifndef EEP_COMMON_MATH_UTIL_H_
#define EEP_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace eep {

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

/// Rounds to the nearest non-negative integer (used to post-process noisy
/// counts when an integer release is requested).
int64_t RoundNonNegative(double x) noexcept;

/// ceil((1+alpha) * x) as used in the strong alpha-neighbor definition
/// (Def. 7.1): upper end of the indistinguishability band for size x.
int64_t AlphaUpperBound(int64_t x, double alpha);

/// Linear interpolation-based empirical quantile (type-7, the numpy/R
/// default). `sorted_values` must be ascending and non-empty; q in [0,1].
double QuantileSorted(const std::vector<double>& sorted_values, double q);

}  // namespace eep

#endif  // EEP_COMMON_MATH_UTIL_H_
