// Deterministic pseudo-random number generation. All stochastic code in the
// library draws from an explicitly seeded Rng so experiments and tests are
// reproducible bit-for-bit across runs.
#ifndef EEP_COMMON_RANDOM_H_
#define EEP_COMMON_RANDOM_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/math_util.h"

namespace eep {

/// One leg of the two-sided geometric inverse transform,
/// floor(ln(u)/ln(p)), with inv_log_p = 1/ln(p) precomputed by the caller.
/// Shared by Rng::FillTwoSidedGeometric (fixed p) and
/// GeometricMechanism::ReleaseBatch (per-cell p) so the two bulk samplers
/// cannot drift apart. Returns double: for near-degenerate parameters the
/// leg magnitude can exceed int64 range, and the difference of two legs is
/// what callers actually release. A zero uniform saturates inside
/// FastLogPositive instead of being redrawn.
inline double TwoSidedGeometricLeg(double u, double inv_log_p) {
  return std::floor(FastLogPositive(u) * inv_log_p);
}

/// \brief xoshiro256++ pseudo-random generator with distribution helpers.
///
/// Seeded through splitmix64 so that any 64-bit seed yields a well-mixed
/// state. Not cryptographically secure; the privacy mechanisms in this
/// repository are research artifacts and a production deployment would swap
/// in a secure noise source behind the same interface.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0xEE9D5EEDULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Fills out[0..n) with n independent Uniform() draws. Equivalent to n
  /// successive Uniform() calls (same stream consumption, same values); the
  /// bulk form exists so batch samplers pay the per-call overhead once.
  void FillUniform(double* out, size_t n);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double Exponential(double mean);

  /// Laplace (double exponential) with location 0 and the given scale b:
  /// density (1/2b) exp(-|x|/b). Requires scale > 0.
  double Laplace(double scale);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Pareto with minimum xm > 0 and tail index alpha > 0.
  double Pareto(double xm, double alpha);

  /// Two-sided geometric (discrete Laplace) with parameter p in (0,1):
  /// Pr[k] proportional to p^{|k|}. Used by the integer mechanism variant.
  int64_t TwoSidedGeometric(double p);

  /// Fills out[0..n) with n two-sided geometric draws of parameter p,
  /// hoisting the 1/ln(p) factor out of the loop — the fixed-p form of
  /// the transform GeometricMechanism::ReleaseBatch applies with per-cell
  /// parameters. Consumes exactly 2n uniforms; zero draws saturate in the
  /// log instead of being redrawn, so the stream position after the call
  /// is a pure function of n (the scalar path redraws — batch and scalar
  /// therefore consume the stream differently, see
  /// CountMechanism::ReleaseBatch for why that is fine).
  void FillTwoSidedGeometric(double p, int64_t* out, size_t n);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [0, n) indices; returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Splits off an independently seeded child generator. Children derived
  /// with distinct `stream` values have decorrelated state, which lets
  /// parallel workloads draw reproducible noise. Advances this generator by
  /// one draw, so successive Fork() calls yield distinct children even for
  /// the same `stream`.
  Rng Fork(uint64_t stream);

  /// Derives the `stream`-th substream WITHOUT advancing this generator:
  /// the child depends only on the current state and `stream`, so
  /// `rng.Substream(k)` is the same generator no matter how many other
  /// substreams were taken first or from which thread. This is the
  /// primitive behind sharded noise drawing: shard k of a parallel release
  /// always sees the same stream regardless of worker count or shard
  /// visit order.
  Rng Substream(uint64_t stream) const;

  /// Jump-ahead: advances this generator by 2^128 steps of NextUint64 in
  /// O(1) (the xoshiro256++ jump polynomial). Two generators separated by
  /// a Jump() produce non-overlapping sequences for any realistic draw
  /// count, giving an alternative block-splitting scheme to Substream().
  void Jump();

 private:
  uint64_t s_[4];
};

}  // namespace eep

#endif  // EEP_COMMON_RANDOM_H_
