#include "common/crc32c.h"

#include <array>

namespace eep {
namespace {

// Four 256-entry tables for slicing-by-4, generated once at startup from
// the reflected Castagnoli polynomial. Table generation is a pure integer
// function, so the tables are identical on every host.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& tab = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab[3][crc & 0xFFu] ^ tab[2][(crc >> 8) & 0xFFu] ^
          tab[1][(crc >> 16) & 0xFFu] ^ tab[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab[0][(crc ^ *p) & 0xFFu];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace eep
