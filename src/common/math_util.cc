#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eep {

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::abs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

double LogSumExp(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (std::isinf(hi) && hi < 0) return hi;  // both -inf
  return hi + std::log1p(std::exp(lo - hi));
}

int64_t RoundNonNegative(double x) noexcept {
  if (!(x > 0.0)) return 0;  // NaN and negatives round to zero
  return static_cast<int64_t>(std::llround(x));
}

int64_t AlphaUpperBound(int64_t x, double alpha) {
  assert(x >= 0 && alpha >= 0.0);
  // Guard against binary representation error before ceil: (1+0.1)*100
  // evaluates to 110.0000...01 and would otherwise round up to 111.
  const double scaled = (1.0 + alpha) * static_cast<double>(x);
  const auto ceil_scaled = static_cast<int64_t>(std::ceil(scaled - 1e-9));
  // Def. 7.1 uses max((1+alpha)|E|, |E|+1): a size change of one worker is
  // always allowed even when alpha*x < 1.
  return std::max(ceil_scaled, x + 1);
}

double QuantileSorted(const std::vector<double>& sorted_values, double q) {
  assert(!sorted_values.empty());
  assert(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

}  // namespace eep
