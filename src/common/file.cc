#include "common/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace eep {
namespace {

Status PosixError(const std::string& what, const std::string& path,
                  int err) {
  return Status::IOError(what + " '" + path + "': " +
                         std::strerror(err) + " (errno " +
                         std::to_string(err) + ")");
}

}  // namespace

// ---------------------------------------------------------------------------
// WritableFile
// ---------------------------------------------------------------------------

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Append(const char* data, size_t n) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Append on closed file '" + path_ +
                                      "'");
  }
  FailpointDecision fp = FailpointRegistry::Instance().Consult("file/append");
  if (fp.fire && fp.fault == FailpointFault::kShortWrite) {
    // Write the stated prefix for real so the torn tail exists on disk,
    // then surface the error — exactly what a disk-full mid-write does.
    n = std::min(n, fp.partial_bytes);
  } else if (fp.fire) {
    return fp.status;
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd_, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return PosixError("write", path_, errno);
    }
    done += static_cast<size_t>(wrote);
    bytes_written_ += static_cast<uint64_t>(wrote);
  }
  if (fp.fire) return fp.status;  // the injected short write
  return Status::OK();
}

Status WritableFile::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("Sync on closed file '" + path_ + "'");
  }
  EEP_FAILPOINT("file/sync");
  if (::fsync(fd_) != 0) return PosixError("fsync", path_, errno);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  EEP_FAILPOINT("file/close");
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return PosixError("close", path_, errno);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RandomAccessFile
// ---------------------------------------------------------------------------

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* out) const {
  EEP_FAILPOINT("file/read");
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out->data() + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread", path_, errno);
    }
    if (got == 0) {
      return Status::IOError("short read '" + path_ + "': wanted " +
                             std::to_string(n) + " bytes at offset " +
                             std::to_string(offset) + ", file ends after " +
                             std::to_string(done));
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

Env* Env::Default() {
  static Env* env = new Env();
  return env;
}

Result<std::unique_ptr<WritableFile>> Env::NewWritableFile(
    const std::string& path) {
  FailpointDecision fp =
      FailpointRegistry::Instance().Consult("file/open-write");
  if (fp.fire) return fp.status;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return PosixError("open for writing", path, errno);
  return std::unique_ptr<WritableFile>(new WritableFile(path, fd));
}

Result<std::unique_ptr<RandomAccessFile>> Env::NewRandomAccessFile(
    const std::string& path) {
  FailpointDecision fp =
      FailpointRegistry::Instance().Consult("file/open-read");
  if (fp.fire) return fp.status;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("open for reading", path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return PosixError("fstat", path, err);
  }
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(
      path, fd, static_cast<uint64_t>(st.st_size)));
}

Result<std::string> Env::ReadFileToString(const std::string& path) {
  EEP_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                       NewRandomAccessFile(path));
  std::string data;
  EEP_RETURN_NOT_OK(file->Read(0, file->size(), &data));
  return data;
}

Status Env::WriteStringToFile(const std::string& path,
                              const std::string& data, bool sync) {
  EEP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       NewWritableFile(path));
  EEP_RETURN_NOT_OK(file->Append(data));
  if (sync) EEP_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  EEP_FAILPOINT("file/rename");
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return PosixError("rename to '" + to + "' from", from, errno);
  }
  return Status::OK();
}

Status Env::RemoveFile(const std::string& path) {
  EEP_FAILPOINT("file/remove");
  if (::unlink(path.c_str()) != 0) return PosixError("unlink", path, errno);
  return Status::OK();
}

Status Env::CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IOError("not a directory: '" + path + "'");
  }
  return PosixError("mkdir", path, errno);
}

Status Env::SyncDir(const std::string& path) {
  EEP_FAILPOINT("file/sync-dir");
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return PosixError("open directory", path, errno);
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return PosixError("fsync directory", path, err);
  }
  if (::close(fd) != 0) return PosixError("close directory", path, errno);
  return Status::OK();
}

Result<bool> Env::FileExists(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) return true;
  if (errno == ENOENT || errno == ENOTDIR) return false;
  return PosixError("stat", path, errno);
}

Result<uint64_t> Env::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return PosixError("stat", path, errno);
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> Env::ListDir(const std::string& path) {
  EEP_FAILPOINT("file/open-read");
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return PosixError("opendir", path, errno);
  std::vector<std::string> names;
  struct dirent* entry;
  errno = 0;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((path + "/" + name).c_str(), &st) == 0 &&
        S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
    errno = 0;
  }
  const int err = errno;
  ::closedir(dir);
  if (err != 0) return PosixError("readdir", path, err);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace eep
