#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>

namespace eep {
namespace {

/// \brief One inventoried site: name + whether it mutates durable state.
struct FailpointSite {
  const char* name;
  bool write_side;
};

// The canonical failpoint inventory. Every EEP_FAILPOINT / Consult site in
// the file and store layers appears here; docs/ARCHITECTURE.md documents
// each name and tools/check_docs.py keeps the two lists equal. Keep one
// entry per line — the docs checker parses this block literally.
constexpr FailpointSite kFailpointInventory[] = {
    {"file/open-write", true},
    {"file/append", true},
    {"file/sync", true},
    {"file/close", true},
    {"file/rename", true},
    {"file/remove", true},
    {"file/sync-dir", true},
    {"file/open-read", false},
    {"file/read", false},
    {"store/segment-write", true},
    {"store/segment-sync", true},
    {"store/wal-append", true},
    {"store/wal-sync", true},
    {"store/wal-rename", true},
};

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  for (const FailpointSite& site : kFailpointInventory) {
    sites_[site.name].write_side = site.write_side;
  }
}

std::vector<std::string> FailpointRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, state] : sites_) {
    (void)state;
    names.push_back(name);
  }
  return names;
}

bool FailpointRegistry::IsRegistered(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.count(name) > 0;
}

bool FailpointRegistry::IsWriteSide(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it != sites_.end() && it->second.write_side;
}

void FailpointRegistry::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    // A typo'd site name would silently inject nothing and make a crash
    // test vacuous; fail loudly instead.
    std::fprintf(stderr, "FailpointRegistry::Arm: unknown site '%s'\n",
                 name.c_str());
    std::abort();
  }
  it->second.armed = true;
  it->second.spec = std::move(spec);
  it->second.hits = 0;
  RefreshActiveLocked();
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it != sites_.end()) {
    it->second.armed = false;
    it->second.hits = 0;
  }
  RefreshActiveLocked();
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : sites_) {
    (void)name;
    state.armed = false;
    state.hits = 0;
  }
  crashed_ = false;
  crash_message_.clear();
  RefreshActiveLocked();
}

void FailpointRegistry::EnableCounting(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = on;
  for (auto& [name, state] : sites_) {
    (void)name;
    state.hits = 0;
  }
  RefreshActiveLocked();
}

int FailpointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.hits;
}

bool FailpointRegistry::InCrash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

FailpointDecision FailpointRegistry::Consult(const char* name) {
  FailpointDecision decision;
  if (!active_.load(std::memory_order_relaxed)) return decision;

  std::lock_guard<std::mutex> lock(mu_);
  if (!counting_ && !crashed_) {
    // Re-check under the lock: another thread may have disarmed between
    // the fast-path load and here.
    bool any_armed = false;
    for (const auto& [site, state] : sites_) {
      (void)site;
      if (state.armed) {
        any_armed = true;
        break;
      }
    }
    if (!any_armed) return decision;
  }
  // Sites outside the inventory self-register as write-side; tests can
  // use ad-hoc names, but the canonical list stays kFailpointInventory.
  SiteState& state = sites_[name];
  ++state.hits;

  if (crashed_ && state.write_side) {
    decision.fire = true;
    decision.fault = FailpointFault::kCrash;
    decision.status = Status::IOError(
        "simulated crash (" + crash_message_ + "): no further writes");
    return decision;
  }
  if (!state.armed || state.hits != state.spec.hit) return decision;

  decision.fire = true;
  decision.fault = state.spec.fault;
  decision.partial_bytes = state.spec.partial_bytes;
  std::string msg = std::string(name) + ": " + state.spec.message;
  switch (state.spec.fault) {
    case FailpointFault::kCrash:
      crashed_ = true;
      crash_message_ = name;
      RefreshActiveLocked();
      decision.status = Status::IOError("simulated crash at " + msg);
      break;
    case FailpointFault::kShortWrite:
      decision.status = Status::IOError("injected short write at " + msg);
      break;
    case FailpointFault::kError:
    default:
      switch (state.spec.code) {
        case StatusCode::kIOError:
          decision.status = Status::IOError("injected at " + msg);
          break;
        case StatusCode::kResourceExhausted:
          decision.status = Status::ResourceExhausted("injected at " + msg);
          break;
        default:
          decision.status = Status::Internal("injected at " + msg);
          break;
      }
      break;
  }
  return decision;
}

void FailpointRegistry::RefreshActiveLocked() {
  bool active = counting_ || crashed_;
  if (!active) {
    for (const auto& [name, state] : sites_) {
      (void)name;
      if (state.armed) {
        active = true;
        break;
      }
    }
  }
  active_.store(active, std::memory_order_relaxed);
}

}  // namespace eep
