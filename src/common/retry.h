// Generic retry with jittered exponential backoff, for transient-fault
// handling around the store's I/O surface (serve::Server wraps
// Store::OpenReadOnly / Store::Refresh with it) and for the refresh
// thread's failure schedule.
//
// Design constraints, in repo style:
//
//   * DETERMINISTIC. The jitter for attempt k is a pure function of
//     (jitter_seed, k) via the seeded Rng, so a backoff schedule is
//     bit-reproducible and tests assert it exactly (tests/retry_test.cc).
//     No clocks seed anything.
//   * STATUS-CLASS DRIVEN. Only transient classes are retried: kIOError
//     (a disk hiccup — the store reports torn/corrupt state the same
//     way, which is why attempts are CAPPED) and kResourceExhausted
//     (overload; backing off is the textbook response). Everything else
//     — NotFound, InvalidArgument, FailedPrecondition, corruption-shaped
//     failures included — returns immediately.
//   * BOUNDED. max_attempts caps the tries and budget_ms caps the total
//     backoff slept; whichever runs out first ends the loop with the
//     last error. Retry must never turn a fault into unbounded latency.
//
// Time is injected via common/clock.h: production passes Clock::Real(),
// tests a FakeClock whose SleepMs advances fake time and records the
// schedule instead of blocking.
#ifndef EEP_COMMON_RETRY_H_
#define EEP_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#include "common/clock.h"
#include "common/status.h"

namespace eep {

/// \brief Backoff + retryability policy. Value type; copy freely.
struct RetryPolicy {
  /// Delay before the first retry. <= 0 disables backoff sleeps (retries
  /// become immediate — useful only in tests).
  int64_t initial_backoff_ms = 10;
  /// Hard cap on any single delay.
  int64_t max_backoff_ms = 1000;
  /// Growth factor per failed attempt (>= 1).
  double multiplier = 2.0;
  /// Fraction of each delay randomized away: the attempt-k delay is
  /// base_k * (1 - jitter * u_k) with u_k ~ U[0,1) drawn deterministically
  /// from jitter_seed. 0 gives the exact exponential schedule.
  double jitter = 0.0;
  /// Total tries including the first. 1 means "no retries".
  int max_attempts = 4;
  /// Total milliseconds of backoff the whole call may sleep; 0 = no
  /// budget beyond max_attempts. A delay that would overrun the budget is
  /// not slept and the loop ends with the last error.
  int64_t budget_ms = 0;
  /// Seed of the deterministic jitter stream.
  uint64_t jitter_seed = 0x5EEDBACCULL;

  /// The (jittered, capped) delay after the `attempt`-th failure,
  /// attempt = 0 for the first. Pure function of (policy, attempt).
  int64_t BackoffMs(int attempt) const;
};

/// True for status classes worth retrying: kIOError, kResourceExhausted.
bool IsRetryableStatus(const Status& status);

/// \brief What a RetryStatus/RetryResult call did, for counters/tests.
struct RetryStats {
  int attempts = 0;        ///< Calls made (>= 1 unless budget was 0-shot).
  int64_t slept_ms = 0;    ///< Total backoff actually slept.
};

/// Invokes `fn` (returning Status) until it succeeds, returns a
/// non-retryable error, or the policy's attempt/budget bounds run out.
/// Returns the last Status either way.
template <typename Fn>
Status RetryStatus(const RetryPolicy& policy, Clock* clock, Fn&& fn,
                   RetryStats* stats = nullptr) {
  RetryStats local;
  RetryStats* out = stats != nullptr ? stats : &local;
  *out = RetryStats{};
  Status last;
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ++out->attempts;
    last = fn();
    if (last.ok() || !IsRetryableStatus(last)) return last;
    if (attempt + 1 >= attempts) break;
    const int64_t delay = policy.BackoffMs(attempt);
    if (policy.budget_ms > 0 && out->slept_ms + delay > policy.budget_ms) {
      break;  // sleeping would overrun the budget; fail with the last error
    }
    clock->SleepMs(delay);
    out->slept_ms += delay;
  }
  return last;
}

/// Result<T> companion: retries on retryable error statuses, hands back
/// the first success (or the last Result either way).
template <typename Fn>
auto RetryResult(const RetryPolicy& policy, Clock* clock, Fn&& fn,
                 RetryStats* stats = nullptr) -> decltype(fn()) {
  using ResultT = decltype(fn());
  RetryStats local;
  RetryStats* out = stats != nullptr ? stats : &local;
  *out = RetryStats{};
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    ++out->attempts;
    ResultT result = fn();
    if (result.ok() || !IsRetryableStatus(result.status()) ||
        attempt + 1 >= attempts) {
      return result;
    }
    const int64_t delay = policy.BackoffMs(attempt);
    if (policy.budget_ms > 0 && out->slept_ms + delay > policy.budget_ms) {
      return result;
    }
    clock->SleepMs(delay);
    out->slept_ms += delay;
  }
}

}  // namespace eep

#endif  // EEP_COMMON_RETRY_H_
