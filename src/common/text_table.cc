#include "common/text_table.h"

#include <algorithm>
#include <cstdio>

namespace eep {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> as_text;
  as_text.reserve(row.size());
  for (double v : row) as_text.push_back(FormatDouble(v, precision));
  AddRow(std::move(as_text));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < headers_.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace eep
