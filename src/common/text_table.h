// Fixed-width console tables: the bench binaries print the paper's tables
// and figure series as aligned text so runs are readable without plotting.
#ifndef EEP_COMMON_TEXT_TABLE_H_
#define EEP_COMMON_TEXT_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace eep {

/// \brief Accumulates rows and renders an aligned, padded text table.
class TextTable {
 public:
  /// Column headers fix the arity of the table.
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; extra fields are dropped, missing fields rendered empty.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& row, int precision = 4);

  /// Renders with single-space-padded columns and a separator rule.
  void Print(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant digits.
std::string FormatDouble(double v, int precision = 4);

}  // namespace eep

#endif  // EEP_COMMON_TEXT_TABLE_H_
