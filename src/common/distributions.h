// Analytic probability distributions used by the privacy mechanisms.
//
// Unlike the raw sampling helpers on Rng, these classes expose densities and
// CDFs so tests can verify admissibility inequalities (Def. 8.3 of the paper)
// directly against the math, and so inverse-transform sampling stays exact.
#ifndef EEP_COMMON_DISTRIBUTIONS_H_
#define EEP_COMMON_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace eep {

/// \brief Laplace(0, b) with density (1/2b)·exp(-|x|/b).
class LaplaceDistribution {
 public:
  /// Creates the distribution; fails unless scale > 0.
  static Result<LaplaceDistribution> Create(double scale);

  double scale() const { return scale_; }
  /// Probability density at x.
  double Pdf(double x) const;
  /// Cumulative distribution at x.
  double Cdf(double x) const;
  /// Inverse CDF (quantile) for u in (0,1).
  double Quantile(double u) const;
  /// One draw.
  double Sample(Rng& rng) const;
  /// Fills out[0..n) with n draws. Consumes exactly n uniforms (the same
  /// stream positions as n Sample() calls) through the same inverse
  /// transform as Rng::Laplace, but evaluated with the vectorizable
  /// FastLogPositive — values may differ from the scalar draws in the
  /// last ulp. Exists so batch release paths amortize per-draw call
  /// overhead and vectorize the transform.
  void SampleN(Rng& rng, double* out, size_t n) const;
  /// E|X| = b.
  double MeanAbs() const { return scale_; }
  /// Var X = 2 b^2.
  double Variance() const { return 2.0 * scale_ * scale_; }

 private:
  explicit LaplaceDistribution(double scale) : scale_(scale) {}
  double scale_;
};

/// \brief The paper's smooth-sensitivity noise density h(z) ∝ 1/(1 + |z|^γ)
/// for γ = 4 (Algorithm 2, "Smooth Gamma").
///
/// Normalization: ∫ dz/(1+z⁴) = π/√2, so h(z) = (√2/π) / (1+z⁴).
/// The CDF has the closed form (for z ≥ 0, with c = √2/π):
///
///   F(z) = 1/2 + c·[ (1/(4√2))·ln((z²+√2 z+1)/(z²−√2 z+1))
///                  + (1/(2√2))·(atan(√2 z+1) + atan(√2 z−1)) ]
///
/// Moments: E Z = 0, E|Z| = √2/2 ≈ 0.7071, Var Z = 1.
/// (The paper's appendix computes the L1 integral without the normalizing
/// constant and reports π/2; the normalized value is (√2/π)(π/2) = √2/2.
/// Both are Θ(1), so Lemma 8.8's bound is unaffected; see EXPERIMENTS.md.)
class GeneralizedCauchy4 {
 public:
  GeneralizedCauchy4() = default;

  /// Probability density at z.
  double Pdf(double z) const;
  /// Cumulative distribution at z (closed form above).
  double Cdf(double z) const;
  /// Inverse CDF by monotone bisection + Newton polish; |error| < 1e-12.
  /// `u` within one ulp of 0 or 1 is clamped to the numerically attainable
  /// range of Cdf (which saturates just below 1 in floating point), so the
  /// result is finite for every u in (0, 1).
  double Quantile(double u) const;
  /// Batched inverse CDF: out[i] = Quantile(u[i]) for i in [0, n), via a
  /// bracketed Newton hybrid seeded from the central/tail expansions of
  /// the CDF — ~5 CDF evaluations per element instead of the ~60 of the
  /// bisection path, which dominates Smooth Gamma's batch sampling.
  /// Wherever the inversion is numerically well-conditioned the result
  /// satisfies Cdf(out[i]) = u[i] to ~1e-10 and matches Quantile(); in the
  /// extreme tails (u within ~1e-13 of 0 or 1, where the computed CDF
  /// saturates) both paths return finite quantiles beyond |z| ~ 1e4 whose
  /// exact values may differ. The chased tail mass is floored at the mass
  /// beyond |z| = 2^20, so the result is finite for every u in [0, 1].
  /// In-place use (out == u) is allowed.
  void QuantileN(const double* u, double* out, size_t n) const;
  /// One draw via inverse transform.
  double Sample(Rng& rng) const;
  /// E|Z| = √2/2.
  double MeanAbs() const;
  /// Var Z = 1.
  double Variance() const { return 1.0; }
};

/// \brief Ramp distribution on [s, t] with linearly decreasing density,
/// p(x) ∝ (t − x), used by the QWI-style noise-infusion fuzz factors.
///
/// The published QWI methodology draws the distortion magnitude |f−1| from a
/// ramp between s and t that concentrates mass near s (small distortions are
/// more likely than large ones).
class RampDistribution {
 public:
  /// Fails unless 0 < s < t.
  static Result<RampDistribution> Create(double s, double t);

  double s() const { return s_; }
  double t() const { return t_; }
  double Pdf(double x) const;
  double Cdf(double x) const;
  /// Inverse transform: x = t − (t−s)·sqrt(1−u).
  double Quantile(double u) const;
  double Sample(Rng& rng) const;
  /// E X = s + (t−s)/3.
  double Mean() const { return s_ + (t_ - s_) / 3.0; }

 private:
  RampDistribution(double s, double t) : s_(s), t_(t) {}
  double s_;
  double t_;
};

}  // namespace eep

#endif  // EEP_COMMON_DISTRIBUTIONS_H_
