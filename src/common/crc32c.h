// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every store block and segment file. Chosen over plain
// CRC-32 for its better error-detection properties on storage payloads
// (the same polynomial RocksDB, LevelDB and ext4 use). Software
// slicing-by-4 implementation — no SSE4.2 dependency, identical results on
// every build host.
#ifndef EEP_COMMON_CRC32C_H_
#define EEP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace eep {

/// Extends `crc` (a running CRC-32C, 0 for a fresh stream) with `n` bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of one complete buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(const std::string& data) {
  return Crc32cExtend(0, data.data(), data.size());
}

/// Masked CRC in the style of LevelDB: storing the raw CRC of a payload
/// that itself embeds CRCs invites accidental collisions, so on-disk
/// frames store Mask(crc) instead.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace eep

#endif  // EEP_COMMON_CRC32C_H_
