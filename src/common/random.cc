#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eep {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

void Rng::FillUniform(double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one draw per call keeps the stream position deterministic.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -mean * std::log(u);
}

double Rng::Laplace(double scale) {
  assert(scale > 0.0);
  // Inverse transform on u ~ U(-1/2, 1/2).
  const double u = Uniform() - 0.5;
  const double mag = std::max(1e-300, 1.0 - 2.0 * std::abs(u));
  return (u >= 0.0 ? -1.0 : 1.0) * scale * std::log(mag);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

int64_t Rng::TwoSidedGeometric(double p) {
  assert(p > 0.0 && p < 1.0);
  // Difference of two geometric draws is the two-sided geometric.
  auto geometric = [&]() -> int64_t {
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(p)));
  };
  return geometric() - geometric();
}

void Rng::FillTwoSidedGeometric(double p, int64_t* out, size_t n) {
  assert(p > 0.0 && p < 1.0);
  const double inv_log_p = 1.0 / std::log(p);
  // No redraw on zero uniforms (they saturate inside the shared leg), so
  // the consumed draw count is fixed at 2n.
  for (size_t i = 0; i < n; ++i) {
    const double g1 = TwoSidedGeometricLeg(Uniform(), inv_log_p);
    const double g2 = TwoSidedGeometricLeg(Uniform(), inv_log_p);
    out[i] = static_cast<int64_t>(g1 - g2);
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numeric edge: land on the last bucket.
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(UniformInt(0, i - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the child's stream id with fresh output so children are decorrelated
  // from the parent and from each other.
  const uint64_t seed = NextUint64() ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  return Rng(seed);
}

Rng Rng::Substream(uint64_t stream) const {
  // Hash the full 256-bit state together with the stream id through
  // splitmix64; the parent state is read, never advanced, so the mapping
  // (state, stream) -> child is a pure function.
  uint64_t mix = stream;
  uint64_t seed = SplitMix64(mix);
  for (uint64_t word : s_) {
    mix ^= word;
    seed ^= SplitMix64(mix);
  }
  return Rng(seed);
}

void Rng::Jump() {
  // Jump polynomial published with xoshiro256++; equivalent to 2^128 calls
  // of NextUint64().
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t mask : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (mask & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      NextUint64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace eep
