// Deterministic fault injection for the file and store layers.
//
// Every fallible I/O site in common/file.cc and store/store.cc consults a
// NAMED failpoint before doing real work. In production nothing is armed
// and a consultation is one relaxed atomic load. Tests arm a site to
// inject, at the k-th consultation:
//
//   * an error Status (EIO / ENOSPC / ... style messages) with nothing
//     written,
//   * a SHORT WRITE: only the first `partial_bytes` of the payload reach
//     the file before the error surfaces — the torn-tail case crash
//     recovery must handle,
//   * a simulated CRASH: this and every later write-side consultation
//     fails, modeling power loss mid-protocol. Read-side sites keep
//     working, so a test can "reboot" by disarming and reopening.
//
// The inventory of registered sites is static (kFailpointInventory in
// failpoint.cc): the crash-matrix test enumerates it to prove recovery
// for every site x hit count, and tools/check_docs.py cross-checks it
// against the failpoint table in docs/ARCHITECTURE.md.
#ifndef EEP_COMMON_FAILPOINT_H_
#define EEP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace eep {

/// \brief What an armed failpoint does when its hit count is reached.
enum class FailpointFault {
  kError,       ///< Return an injected error; the operation does nothing.
  kShortWrite,  ///< Write only `partial_bytes`, then return an error.
  kCrash,       ///< Fail this and every later write-side consultation.
};

/// \brief One armed fault: fire `fault` on the `hit`-th consultation.
struct FailpointSpec {
  FailpointFault fault = FailpointFault::kError;
  /// 1-based consultation index at which the fault fires (before then the
  /// site behaves normally).
  int hit = 1;
  /// Status code of the injected error (kIOError for disk faults).
  StatusCode code = StatusCode::kIOError;
  /// Appended to the injected status message, e.g. "ENOSPC".
  std::string message = "injected fault";
  /// kShortWrite: bytes of the payload actually written before the error.
  size_t partial_bytes = 0;
};

/// \brief What a consultation told the site to do.
struct FailpointDecision {
  bool fire = false;
  FailpointFault fault = FailpointFault::kError;
  size_t partial_bytes = 0;
  Status status;  ///< The error to surface when fire is true.
};

/// \brief Process-wide registry of named fault-injection sites.
///
/// Thread-safe: arming, disarming and consultation take a mutex, but the
/// disarmed-and-not-counting fast path is a single relaxed atomic load so
/// production I/O pays nothing measurable.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Statically inventoried site names, sorted. Consultations from sites
  /// outside the inventory register themselves on first hit (useful in
  /// tests), but the canonical list is the inventory.
  std::vector<std::string> Names() const;
  bool IsRegistered(const std::string& name) const;
  /// True for sites that mutate durable state (crash stops them); read
  /// sites survive a simulated crash.
  bool IsWriteSide(const std::string& name) const;

  /// Arms `name`; replaces any previous spec and resets its hit counter.
  /// The name must be in the inventory (aborts otherwise — a typo in a
  /// test must not silently inject nothing).
  void Arm(const std::string& name, FailpointSpec spec);
  void Disarm(const std::string& name);
  /// Disarms every site, clears the crash state and all hit counters.
  void DisarmAll();

  /// When enabled, every consultation is counted even when nothing is
  /// armed — the crash-matrix test records a clean run's per-site hit
  /// counts to know which (site, k) pairs exist.
  void EnableCounting(bool on);
  /// Consultations of `name` since the last DisarmAll/EnableCounting.
  int HitCount(const std::string& name) const;

  /// True once a kCrash fault has fired (until DisarmAll).
  bool InCrash() const;

  /// Site-side entry point; `name` must outlive the call (string literal).
  FailpointDecision Consult(const char* name);

 private:
  FailpointRegistry();

  struct SiteState {
    bool armed = false;
    FailpointSpec spec;
    int hits = 0;
    bool write_side = true;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  /// Fast path: true while any site is armed, counting is on, or a crash
  /// is in effect.
  std::atomic<bool> active_{false};
  bool counting_ = false;
  bool crashed_ = false;
  std::string crash_message_;

  void RefreshActiveLocked();
};

/// Consults `site` and propagates an injected plain-error/crash Status.
/// Sites that need short-write semantics call Consult directly instead.
#define EEP_FAILPOINT(site)                                          \
  do {                                                               \
    ::eep::FailpointDecision _fp_decision =                          \
        ::eep::FailpointRegistry::Instance().Consult(site);          \
    if (_fp_decision.fire) return _fp_decision.status;               \
  } while (0)

}  // namespace eep

#endif  // EEP_COMMON_FAILPOINT_H_
