// Minimal CSV reading/writing for experiment outputs and released tables.
#ifndef EEP_COMMON_CSV_H_
#define EEP_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace eep {

/// \brief Streaming CSV writer with RFC-4180 quoting.
///
/// Writes a header row followed by data rows; fields containing commas,
/// quotes or newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (kept alive by the caller).
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes the header; must be called at most once, before any row.
  Status WriteHeader(const std::vector<std::string>& columns);

  /// Writes a data row; must have the same arity as the header if one was
  /// written.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Convenience overload formatting doubles with up to 10 significant
  /// digits.
  Status WriteRow(const std::vector<double>& fields);

  int64_t rows_written() const { return rows_written_; }

 private:
  std::ostream* out_;
  int64_t rows_written_ = 0;
  size_t arity_ = 0;
  bool header_written_ = false;
};

/// Escapes one CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

/// Parses one CSV line into fields (handles quoted fields and doubled
/// quotes; does not handle embedded newlines, which our writers never emit
/// inside released tables).
std::vector<std::string> CsvParseLine(const std::string& line);

/// Reads an entire CSV file into header + rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};
Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Writes header + rows to a file, creating/truncating it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace eep

#endif  // EEP_COMMON_CSV_H_
