#include "common/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace eep {

// ---------------------------------------------------------------------------
// LaplaceDistribution
// ---------------------------------------------------------------------------

Result<LaplaceDistribution> LaplaceDistribution::Create(double scale) {
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("Laplace scale must be finite and > 0");
  }
  return LaplaceDistribution(scale);
}

double LaplaceDistribution::Pdf(double x) const {
  return 0.5 / scale_ * std::exp(-std::abs(x) / scale_);
}

double LaplaceDistribution::Cdf(double x) const {
  if (x < 0.0) return 0.5 * std::exp(x / scale_);
  return 1.0 - 0.5 * std::exp(-x / scale_);
}

double LaplaceDistribution::Quantile(double u) const {
  assert(u > 0.0 && u < 1.0);
  if (u < 0.5) return scale_ * std::log(2.0 * u);
  return -scale_ * std::log(2.0 * (1.0 - u));
}

double LaplaceDistribution::Sample(Rng& rng) const {
  return rng.Laplace(scale_);
}

void LaplaceDistribution::SampleN(Rng& rng, double* out, size_t n) const {
  rng.FillUniform(out, n);
  // Same inverse transform as Rng::Laplace on u ~ U(-1/2, 1/2), but through
  // the inline branch-free FastLogPositive so the transform loop
  // vectorizes — the libm log call is the dominant per-sample cost of the
  // scalar path. Values can differ from Rng::Laplace in the last ulp. No
  // clamp: mag == +0.0 (a zero uniform, probability 2^-53) saturates
  // inside FastLogPositive, mirroring the scalar path's 1e-300 floor.
  for (size_t i = 0; i < n; ++i) {
    const double u = out[i] - 0.5;
    const double mag = 1.0 - 2.0 * std::abs(u);
    out[i] = -std::copysign(scale_, u) * FastLogPositive(mag);
  }
}

// ---------------------------------------------------------------------------
// GeneralizedCauchy4
// ---------------------------------------------------------------------------

namespace {
constexpr double kSqrt2 = 1.4142135623730950488;
// Normalizing constant of 1/(1+z^4): total mass is pi/sqrt(2).
constexpr double kNorm = kSqrt2 / M_PI;

// Antiderivative of 1/(1+u^4) with A(0) = 0, monotone increasing, continuous
// on all of R (the atan form below has no branch discontinuity).
double Antiderivative(double u) {
  const double u2 = u * u;
  const double log_term =
      std::log((u2 + kSqrt2 * u + 1.0) / (u2 - kSqrt2 * u + 1.0)) /
      (4.0 * kSqrt2);
  const double atan_term =
      (std::atan(kSqrt2 * u + 1.0) + std::atan(kSqrt2 * u - 1.0)) /
      (2.0 * kSqrt2);
  return log_term + atan_term;
}

// Smallest tail mass the batched inversion will chase: the mass beyond
// |z| = 2^20 under the z^-3 tail expansion, c/(3 * (2^20)^3). The computed
// Cdf saturates to exactly 0/1 well before that (catastrophic cancellation
// near 1), so the clamp lives in tail-mass space — in u space, 1 - t
// rounds straight back to 1 — keeping the Newton seed and bracket finite
// for every u in (0, 1), and even for u = 0 or 1.
constexpr double kMinTailMass = kNorm / 3.0 * 0x1p-60;

// Inverts the CDF for v in [0.5, 1] (the non-negative half; callers map
// u < 0.5 through the symmetry F(-z) = 1 - F(z)). Bracketed Newton: the
// central expansion F(z) ~ 1/2 + c z underestimates the root while the
// tail expansion 1 - F(z) ~ c/(3 z^3) overestimates it (the integrand
// 1/(1+z^4) is below z^-4), so the two bracket the root and the seed comes
// from whichever regime applies; every Newton step that would leave the
// maintained bracket falls back to bisection. Converges in ~5 CDF
// evaluations instead of the ~60 of the pure-bisection path in Quantile().
double QuantileUpperNewton(double v) {
  const GeneralizedCauchy4 d;
  const double tail_mass = std::max(1.0 - v, kMinTailMass);
  const double central = (v - 0.5) / kNorm;
  const double tail = std::cbrt(kNorm / (3.0 * tail_mass));
  double z = tail_mass < 0.25 ? tail : central;
  double lo = 0.0;  // F(lo) <= v by construction (F(0) = 1/2 <= v).
  // The root is < tail mathematically; the margin absorbs rounding.
  double hi = std::min(2.0 * tail + 1.0, 0x1p21);
  for (int i = 0; i < 80; ++i) {
    const double f = d.Cdf(z) - v;
    if (f < 0.0) {
      lo = z;
    } else {
      hi = z;
    }
    const double step = f / d.Pdf(z);
    double next = z - step;
    if (!(next > lo && next < hi) || !std::isfinite(next)) {
      next = 0.5 * (lo + hi);
    }
    if (std::abs(next - z) < 1e-14 * std::max(1.0, std::abs(next))) {
      return next;
    }
    z = next;
  }
  return z;
}
}  // namespace

double GeneralizedCauchy4::Pdf(double z) const {
  const double z2 = z * z;
  return kNorm / (1.0 + z2 * z2);
}

double GeneralizedCauchy4::Cdf(double z) const {
  return 0.5 + kNorm * Antiderivative(z);
}

double GeneralizedCauchy4::Quantile(double u) const {
  assert(u > 0.0 && u < 1.0);
  // The computed CDF saturates strictly below 1.0 (and above 0.0) in
  // floating point: the z^-3 tail drops under one ulp of 1 near |z| ~ 1e5,
  // so for u within an ulp of 0 or 1 the bracket expansion below would
  // otherwise run lo/hi to +-inf, where Antiderivative evaluates inf/inf =
  // NaN and the bisection never converges. Clamp u to the attainable range
  // (moving such u by less than one representable uniform step) and cap
  // bracket growth as a backstop.
  constexpr double kBracketCap = 0x1p24;
  static const double kAttainableLo = GeneralizedCauchy4().Cdf(-0x1p20);
  static const double kAttainableHi = GeneralizedCauchy4().Cdf(0x1p20);
  u = std::clamp(u, kAttainableLo, kAttainableHi);
  // The tail decays like z^-3, so quantiles grow like (1-u)^{-1/3}; use that
  // to pick an initial bracket, then bisect on the monotone CDF.
  double lo = -1.0, hi = 1.0;
  while (Cdf(lo) > u && lo > -kBracketCap) lo *= 2.0;
  while (Cdf(hi) < u && hi < kBracketCap) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (hi - lo < 1e-13 * std::max(1.0, std::abs(mid))) break;
    if (Cdf(mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Newton polish (one or two steps suffice once bisection converged).
  double z = 0.5 * (lo + hi);
  for (int i = 0; i < 3; ++i) {
    const double f = Cdf(z) - u;
    const double d = Pdf(z);
    if (d <= 0.0) break;
    const double step = f / d;
    if (!std::isfinite(step)) break;
    z -= step;
  }
  return z;
}

void GeneralizedCauchy4::QuantileN(const double* u, double* out,
                                   size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    const double ui = u[i];
    out[i] = ui >= 0.5 ? QuantileUpperNewton(ui)
                       : -QuantileUpperNewton(1.0 - ui);
  }
}

double GeneralizedCauchy4::Sample(Rng& rng) const {
  double u = rng.Uniform();
  while (u <= 0.0 || u >= 1.0) u = rng.Uniform();
  return Quantile(u);
}

double GeneralizedCauchy4::MeanAbs() const { return kSqrt2 / 2.0; }

// ---------------------------------------------------------------------------
// RampDistribution
// ---------------------------------------------------------------------------

Result<RampDistribution> RampDistribution::Create(double s, double t) {
  if (!(0.0 < s && s < t) || !std::isfinite(t)) {
    return Status::InvalidArgument("Ramp requires 0 < s < t, both finite");
  }
  return RampDistribution(s, t);
}

double RampDistribution::Pdf(double x) const {
  if (x < s_ || x > t_) return 0.0;
  const double width = t_ - s_;
  return 2.0 * (t_ - x) / (width * width);
}

double RampDistribution::Cdf(double x) const {
  if (x <= s_) return 0.0;
  if (x >= t_) return 1.0;
  const double width = t_ - s_;
  const double r = (t_ - x) / width;
  return 1.0 - r * r;
}

double RampDistribution::Quantile(double u) const {
  assert(u >= 0.0 && u <= 1.0);
  return t_ - (t_ - s_) * std::sqrt(1.0 - u);
}

double RampDistribution::Sample(Rng& rng) const {
  return Quantile(rng.Uniform());
}

}  // namespace eep
